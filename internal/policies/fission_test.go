package policies

import (
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// fissionApp builds a runnable application with a width-1 parallel
// region: beacon -> [split | agg replicas | merge] -> sink. The beacon
// emits slowly (one tuple an hour) so the dataplane idles while the
// tests drive the routine's gate with synthetic metric contexts.
func fissionApp(t *testing.T, name string) *adl.Application {
	t.Helper()
	s := tuple.MustSchema(
		tuple.Attribute{Name: "user", Type: tuple.String},
		tuple.Attribute{Name: "score", Type: tuple.Float},
	)
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Param("period", "1h").Out(s)
	agg := b.AddOperator("agg", ops.KindAggregate).
		Param("window", "1h").Param("groupBy", "user").Param("valueAttr", "score").
		In(s).Out(s).Parallel(1)
	sink := b.AddOperator("sink", ops.KindCountSink).In(s)
	b.Connect(src, 0, agg, 0)
	b.Connect(agg, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func fissionFixture(t *testing.T, p *Fission) (*core.Service, *vclock.Manual) {
	t.Helper()
	inst := newInst(t, "h1", "h2")
	clock := vclock.NewManual(time.Unix(0, 0))
	svc, err := core.NewRoutineService(core.Config{
		Name: "fzOrca", SAM: inst.SAM, SRM: inst.SRM, Clock: clock, PullInterval: time.Hour,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(fissionApp(t, p.App)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return svc, clock
}

// rateCtx fabricates one PE rate observation the way the dispatch loop
// would deliver it.
func rateCtx(job ids.JobID, pe ids.PEID, metric string, v int64) *core.PEMetricContext {
	return &core.PEMetricContext{Job: job, App: "FZ", PE: pe, Metric: metric, Value: v}
}

func splitPEOf(t *testing.T, p *Fission, svc *core.Service) ids.PEID {
	t.Helper()
	pe, ok := svc.PEOfOperator(p.Job(), p.Region+"/split")
	if !ok {
		t.Fatal("no split PE")
	}
	return pe
}

func TestFissionWidensAfterDebounce(t *testing.T) {
	p := &Fission{App: "FZ", Region: "agg", WidenAboveRate: 1000, MaxWidth: 3}
	svc, _ := fissionFixture(t, p)
	if p.Width() != 1 {
		t.Fatalf("initial width = %d", p.Width())
	}
	split := splitPEOf(t, p, svc)
	drive := func(metric string, v int64) {
		_ = p.gate(rateCtx(p.Job(), split, metric, v), svc.Actions())
	}

	// Egress observations inform the load picture but never advance the
	// widen streak, however large.
	drive(metrics.PEEgressRate, 9000)
	drive(metrics.PEEgressRate, 9000)
	if p.Widenings() != 0 {
		t.Fatalf("egress observations widened: %d", p.Widenings())
	}
	if in, eg := p.Rates(); in != 0 || eg != 9000 {
		t.Fatalf("rates = %d/%d", in, eg)
	}
	// One breach, then a healthy observation: the streak resets.
	drive(metrics.PEIngestRate, 1500)
	drive(metrics.PEIngestRate, 10)
	drive(metrics.PEIngestRate, 1500)
	if p.Widenings() != 0 {
		t.Fatalf("widened without consecutive breaches: %d", p.Widenings())
	}
	// The second consecutive breach actuates a real resize.
	drive(metrics.PEIngestRate, 1600)
	if p.Widenings() != 1 || p.Width() != 2 {
		t.Fatalf("widenings=%d width=%d", p.Widenings(), p.Width())
	}
	if w, ok := svc.RegionWidth(p.Job(), "agg"); !ok || w != 2 {
		t.Fatalf("platform width = %d ok=%v", w, ok)
	}
	log := p.Log()
	if len(log) != 1 || log[0].From != 1 || log[0].To != 2 || log[0].IngestPerSec != 1600 {
		t.Fatalf("log = %+v", log)
	}
	// A foreign PE's ingest rate never reaches the gate.
	_ = p.gate(rateCtx(p.Job(), split+1000, metrics.PEIngestRate, 9999), svc.Actions())
	_ = p.gate(rateCtx(p.Job(), split+1000, metrics.PEIngestRate, 9999), svc.Actions())
	if p.Widenings() != 1 {
		t.Fatalf("foreign PE widened: %d", p.Widenings())
	}
}

func TestFissionRespectsMaxWidth(t *testing.T) {
	p := &Fission{App: "FZ", Region: "agg", WidenAboveRate: 100, MaxWidth: 2}
	svc, _ := fissionFixture(t, p)
	split := splitPEOf(t, p, svc)
	for i := 0; i < 6; i++ {
		_ = p.gate(rateCtx(p.Job(), split, metrics.PEIngestRate, 500), svc.Actions())
	}
	if p.Widenings() != 1 || p.Width() != 2 {
		t.Fatalf("cap ignored: widenings=%d width=%d", p.Widenings(), p.Width())
	}
	if w, _ := svc.RegionWidth(p.Job(), "agg"); w != 2 {
		t.Fatalf("platform width = %d", w)
	}
}

func TestFissionQueueDepthTrigger(t *testing.T) {
	// The offered rate never breaches; sustained queue depth does.
	p := &Fission{App: "FZ", Region: "agg", WidenAboveRate: 1 << 40, WidenAboveQueue: 100}
	svc, _ := fissionFixture(t, p)
	split := splitPEOf(t, p, svc)
	queue := func(epoch uint64, v int64) {
		p.observeQueue(&core.OperatorMetricContext{Job: p.Job(), App: "FZ", Metric: metrics.OpQueueSize, Value: v, Epoch: epoch})
	}
	queue(1, 40)
	queue(1, 500) // worst queue of the round
	if p.QueueDepth() != 500 {
		t.Fatalf("queue depth = %d", p.QueueDepth())
	}
	_ = p.gate(rateCtx(p.Job(), split, metrics.PEIngestRate, 10), svc.Actions())
	_ = p.gate(rateCtx(p.Job(), split, metrics.PEIngestRate, 10), svc.Actions())
	if p.Widenings() != 1 || p.Width() != 2 {
		t.Fatalf("queue overload did not widen: widenings=%d width=%d", p.Widenings(), p.Width())
	}
	if p.Log()[0].QueueDepth != 500 {
		t.Fatalf("log = %+v", p.Log())
	}
	// A new pull round restarts the high-water mark: healthy queues stop
	// the widening.
	queue(2, 5)
	if p.QueueDepth() != 5 {
		t.Fatalf("queue depth after new epoch = %d", p.QueueDepth())
	}
	_ = p.gate(rateCtx(p.Job(), split, metrics.PEIngestRate, 10), svc.Actions())
	_ = p.gate(rateCtx(p.Job(), split, metrics.PEIngestRate, 10), svc.Actions())
	if p.Widenings() != 1 {
		t.Fatalf("widened on a healthy round: %d", p.Widenings())
	}
}

func TestFissionCooldownSuppressesResizes(t *testing.T) {
	p := &Fission{App: "FZ", Region: "agg", WidenAboveRate: 100, MaxWidth: 3, Cooldown: 10 * time.Minute}
	svc, clock := fissionFixture(t, p)
	split := splitPEOf(t, p, svc)
	breach := func() {
		_ = p.gate(rateCtx(p.Job(), split, metrics.PEIngestRate, 500), svc.Actions())
	}
	breach()
	breach()
	if p.Width() != 2 {
		t.Fatalf("width = %d", p.Width())
	}
	// Still overloaded, but inside the cooldown: no second resize.
	breach()
	breach()
	breach()
	if p.Width() != 2 {
		t.Fatalf("resized within cooldown: width = %d", p.Width())
	}
	clock.Advance(10 * time.Minute)
	breach()
	breach()
	if p.Width() != 3 {
		t.Fatalf("width after cooldown = %d", p.Width())
	}
	if w, _ := svc.RegionWidth(p.Job(), "agg"); w != 3 {
		t.Fatalf("platform width = %d", w)
	}
}
