package policies

import (
	"os"
	"strings"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/apps"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/extjob"
	"streamorca/internal/ids"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

func newInst(t *testing.T, hosts ...string) *platform.Instance {
	t.Helper()
	specs := make([]platform.HostSpec, len(hosts))
	for i, h := range hosts {
		specs[i] = platform.HostSpec{Name: h}
	}
	inst, err := platform.NewInstance(platform.Options{Hosts: specs, MetricsInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- ModelRecompute unit behaviour (driven with synthetic contexts) ---

// tinyApp builds a minimal registrable application so the routine's
// Setup-time submission succeeds; the tests then drive the guarded
// handler directly with synthetic metric contexts.
func tinyApp(t *testing.T, name string) *adl.Application {
	t.Helper()
	s := tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(s).Param("count", "1")
	sink := b.AddOperator("sink", ops.KindCountSink).In(s)
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseAll})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func recomputeFixture(t *testing.T) (*ModelRecompute, *core.Service, *vclock.Manual) {
	t.Helper()
	inst := newInst(t, "h1")
	clock := vclock.NewManual(time.Unix(0, 0))
	modelID, storeID := "pol-model-"+t.Name(), "pol-store-"+t.Name()
	extjob.SetModel(modelID, extjob.NewModel("flash"))
	store := extjob.GetStore(storeID)
	store.Reset()
	for i := 0; i < 20; i++ {
		store.Append("I hate my phone because of the antenna")
	}
	p := &ModelRecompute{
		App: "X", MatcherOp: "m", ModelID: modelID, StoreID: storeID,
		Threshold: 1.0, Suppression: 10 * time.Minute,
		Runner: extjob.NewRunner(clock, time.Minute), MinSupport: 5,
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "t", SAM: inst.SAM, SRM: inst.SRM, Clock: clock, PullInterval: time.Hour,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(tinyApp(t, "X")); err != nil {
		t.Fatal(err)
	}
	// Start runs the routine's Setup, building the guarded handler the
	// tests below drive directly.
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return p, svc, clock
}

func metricCtx(name string, value int64, epoch uint64) *core.OperatorMetricContext {
	return &core.OperatorMetricContext{
		Job: 1, App: "X", InstanceName: "m", Metric: name,
		Custom: true, Value: value, Epoch: epoch,
	}
}

// drive feeds one synthetic metric event through the policy's composed
// guard chain, the way the dispatch loop would.
func drive(p *ModelRecompute, svc *core.Service, ctx *core.OperatorMetricContext) {
	_ = p.handle(ctx, svc.Actions())
}

func TestModelRecomputeWaitsForMatchingEpochs(t *testing.T) {
	p, svc, _ := recomputeFixture(t)
	// Known from epoch 1, unknown from epoch 2: no evaluation yet.
	drive(p, svc, metricCtx("recentKnownCauses", 10, 1))
	drive(p, svc, metricCtx("recentUnknownCauses", 50, 2))
	if len(p.Series()) != 0 {
		t.Fatalf("evaluated across epochs: %v", p.Series())
	}
	// Matching epochs: evaluated and triggered.
	drive(p, svc, metricCtx("recentKnownCauses", 10, 2))
	if got := p.Series(); len(got) != 1 || got[0].Ratio != 5.0 {
		t.Fatalf("series = %v", got)
	}
	if p.Triggers() != 1 {
		t.Fatalf("triggers = %d", p.Triggers())
	}
}

func TestModelRecomputeBelowThresholdNoTrigger(t *testing.T) {
	p, svc, _ := recomputeFixture(t)
	drive(p, svc, metricCtx("recentKnownCauses", 100, 1))
	drive(p, svc, metricCtx("recentUnknownCauses", 10, 1))
	if p.Triggers() != 0 {
		t.Fatal("triggered below threshold")
	}
	if len(p.Series()) != 1 {
		t.Fatal("series not recorded")
	}
}

func TestModelRecomputeSuppression(t *testing.T) {
	p, svc, clock := recomputeFixture(t)
	drive(p, svc, metricCtx("recentKnownCauses", 1, 1))
	drive(p, svc, metricCtx("recentUnknownCauses", 50, 1))
	if p.Triggers() != 1 {
		t.Fatalf("triggers = %d", p.Triggers())
	}
	// Let the job finish so Runner.Running() is false again. The
	// service's metric pull loop is already a clock waiter, so wait for
	// the runner's sleep as the second one before advancing.
	clock.BlockUntilWaiters(2)
	clock.Advance(time.Minute)
	waitFor(t, "job completion", func() bool { return !p.Runner.Running() })
	// Still crossing within the suppression window: no second job.
	drive(p, svc, metricCtx("recentKnownCauses", 1, 2))
	drive(p, svc, metricCtx("recentUnknownCauses", 60, 2))
	if p.Triggers() != 1 {
		t.Fatalf("re-triggered within suppression: %d", p.Triggers())
	}
	// After the suppression interval elapses, it may trigger again.
	clock.Advance(10 * time.Minute)
	drive(p, svc, metricCtx("recentKnownCauses", 1, 3))
	drive(p, svc, metricCtx("recentUnknownCauses", 60, 3))
	if p.Triggers() != 2 {
		t.Fatalf("triggers after suppression = %d", p.Triggers())
	}
}

func TestModelRecomputeIgnoresOtherMetrics(t *testing.T) {
	p, svc, _ := recomputeFixture(t)
	drive(p, svc, metricCtx("somethingElse", 9, 1))
	if len(p.Series()) != 0 || p.Triggers() != 0 {
		t.Fatal("foreign metric processed")
	}
}

// TestModelRecomputeSetupErrorSurfaces pins the satellite bugfix: a
// routine whose application is missing fails Service.Start with an
// error instead of panicking inside an event handler.
func TestModelRecomputeSetupErrorSurfaces(t *testing.T) {
	inst := newInst(t, "h1")
	p := &ModelRecompute{App: "NotRegistered", MatcherOp: "m", Threshold: 1}
	svc, err := core.NewRoutineService(core.Config{
		Name: "t", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	err = svc.Start()
	if err == nil {
		t.Fatal("Start succeeded with an unregistered application")
	}
	if !strings.Contains(err.Error(), "modelRecompute") {
		t.Fatalf("setup error lacks routine context: %v", err)
	}
}

// --- Failover end-to-end behaviour ---

func failoverFixture(t *testing.T) (*Failover, *core.Service, *platform.Instance) {
	t.Helper()
	inst := newInst(t, "h1", "h2", "h3", "h4")
	app, err := apps.TrendApp(apps.TrendConfig{
		Name: "TC", Symbols: "IBM", Seed: 1, Count: 0,
		Period: 500 * time.Microsecond, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefix := "pol-fo-" + t.Name()
	p := &Failover{
		App: "TC", Replicas: 3,
		SubmitParams: func(i int) map[string]string {
			id := apps.ReplicaCollector(prefix, i)
			ops.ResetCollector(id)
			return map[string]string{"collector": id}
		},
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "foOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	waitFor(t, "replicas", func() bool { return len(p.Jobs()) == 3 })
	return p, svc, inst
}

func TestFailoverActiveFailurePromotesOldestBackup(t *testing.T) {
	p, svc, _ := failoverFixture(t)
	jobs := p.Jobs()
	if p.Active() != jobs[0] {
		t.Fatalf("initial active = %v", p.Active())
	}
	pe, ok := svc.PEOfOperator(jobs[0], apps.TrendAggregateOp)
	if !ok {
		t.Fatal("no aggregate PE")
	}
	if err := svc.KillPE(pe, "test"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failover", func() bool { return p.Failovers() == 1 })
	if p.Active() != jobs[1] {
		t.Fatalf("promoted %v, want oldest backup %v", p.Active(), jobs[1])
	}
	waitFor(t, "restart", func() bool { return p.Restarts() == 1 })
	log := p.Log()
	if len(log) != 1 || log[0].OldActive != jobs[0] || log[0].NewActive != jobs[1] {
		t.Fatalf("log = %+v", log)
	}
}

func TestFailoverBackupFailureKeepsActive(t *testing.T) {
	p, svc, _ := failoverFixture(t)
	jobs := p.Jobs()
	pe, _ := svc.PEOfOperator(jobs[2], apps.TrendAggregateOp)
	if err := svc.KillPE(pe, "test"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restart", func() bool { return p.Restarts() == 1 })
	if p.Failovers() != 0 || p.Active() != jobs[0] {
		t.Fatalf("backup failure changed active: failovers=%d active=%v", p.Failovers(), p.Active())
	}
}

func TestFailoverRestartedReplicaIsYoungest(t *testing.T) {
	p, svc, _ := failoverFixture(t)
	jobs := p.Jobs()
	// Kill replica 0 (active): replica 1 promoted; replica 0 restarts and
	// becomes youngest. Kill replica 1 next: replica 2 (not the freshly
	// restarted 0) must be promoted.
	pe0, _ := svc.PEOfOperator(jobs[0], apps.TrendAggregateOp)
	if err := svc.KillPE(pe0, "t1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first failover", func() bool { return p.Failovers() == 1 && p.Restarts() == 1 })
	pe1, _ := svc.PEOfOperator(jobs[1], apps.TrendAggregateOp)
	if err := svc.KillPE(pe1, "t2"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second failover", func() bool { return p.Failovers() == 2 })
	if p.Active() != jobs[2] {
		t.Fatalf("promoted %v (replica %d), want oldest healthy %v",
			p.Active(), p.ReplicaIndex(p.Active()), jobs[2])
	}
}

// failoverCkptFixture is failoverFixture on a checkpointing platform,
// so snapshot ages flow and CheckpointPE actuations succeed.
func failoverCkptFixture(t *testing.T, maxAge time.Duration) (*Failover, *core.Service, *platform.Instance) {
	t.Helper()
	inst, err := platform.NewInstance(platform.Options{
		Hosts: []platform.HostSpec{
			{Name: "h1"}, {Name: "h2"}, {Name: "h3"}, {Name: "h4"},
		},
		MetricsInterval: time.Hour,
		Checkpoint:      ckpt.NewMemStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	app, err := apps.TrendApp(apps.TrendConfig{
		Name: "TC", Symbols: "IBM", Seed: 1, Count: 0,
		Period: 500 * time.Microsecond, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefix := "pol-cf-" + t.Name()
	p := &Failover{
		App: "TC", Replicas: 3, MaxSnapshotAge: maxAge,
		SubmitParams: func(i int) map[string]string {
			id := apps.ReplicaCollector(prefix, i)
			ops.ResetCollector(id)
			return map[string]string{"collector": id}
		},
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "cfOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	waitFor(t, "replicas", func() bool { return len(p.Jobs()) == 3 })
	return p, svc, inst
}

// pullAges flushes host metrics and runs one orchestrator pull round,
// then waits until the policy has observed a snapshot age for job (or
// just drains the round when job is 0).
func pullAges(t *testing.T, p *Failover, svc *core.Service, inst *platform.Instance, job ids.JobID) {
	t.Helper()
	inst.FlushMetrics()
	svc.PullMetricsNow()
	if job == ids.InvalidJob {
		return
	}
	waitFor(t, "snapshot age observed", func() bool {
		_, ok := p.ReplicaStaleness(job)
		return ok
	})
}

// TestFailoverPromotesFreshestSnapshot: the youngest backup wins the
// promotion because its snapshot is the freshest — the longest-uptime
// order would have picked the older, never-snapshotted backup.
func TestFailoverPromotesFreshestSnapshot(t *testing.T) {
	p, svc, inst := failoverCkptFixture(t, 0)
	jobs := p.Jobs()
	aggPE := func(j ids.JobID) ids.PEID {
		pe, ok := svc.PEOfOperator(j, apps.TrendAggregateOp)
		if !ok {
			t.Fatalf("replica %s has no aggregation PE", j)
		}
		return pe
	}
	// Only the youngest backup (replica 2) snapshots its state.
	if err := svc.CheckpointPE(aggPE(jobs[2])); err != nil {
		t.Fatal(err)
	}
	pullAges(t, p, svc, inst, jobs[2])
	if _, ok := p.ReplicaStaleness(jobs[1]); ok {
		t.Fatal("unsnapshotted replica reports staleness")
	}

	if err := svc.KillPE(aggPE(jobs[0]), "active fault"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failover", func() bool { return p.Failovers() == 1 })
	if p.Active() != jobs[2] {
		t.Fatalf("promoted replica %d, want 2 (freshest snapshot)", p.ReplicaIndex(p.Active()))
	}

	// The demoted replica's surviving PEs were checkpointed before the
	// promotion, inside the failure event's transaction (gate refreshes
	// carry a different TxID and must not satisfy this).
	if p.LastPromotionTx() == 0 {
		t.Fatal("promotion recorded no transaction id")
	}
	var prePromotion int
	for _, rec := range svc.ActuationJournal() {
		if rec.Action == "CheckpointPE" && rec.TxID == p.LastPromotionTx() && rec.Err == "" {
			prePromotion++
		}
	}
	if prePromotion == 0 {
		t.Fatalf("no pre-promotion CheckpointPE in journal: %+v", svc.ActuationJournal())
	}
}

// TestFailoverStalenessGateRefreshesActive: with MaxSnapshotAge set, a
// sustained over-limit snapshot age on the active replica triggers a
// CheckpointPE refresh after the debounce — and only after it.
func TestFailoverStalenessGateRefreshesActive(t *testing.T) {
	p, svc, inst := failoverCkptFixture(t, time.Millisecond)
	jobs := p.Jobs()
	activeAgg, ok := svc.PEOfOperator(jobs[0], apps.TrendAggregateOp)
	if !ok {
		t.Fatal("no aggregation PE")
	}
	if err := svc.CheckpointPE(activeAgg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // age past MaxSnapshotAge
	pullAges(t, p, svc, inst, jobs[0])
	if got := p.SnapshotRefreshes(); got != 0 {
		t.Fatalf("refreshed after one breach (debounce %d): %d", p.StalenessDebounce, got)
	}
	time.Sleep(5 * time.Millisecond)
	pullAges(t, p, svc, inst, ids.InvalidJob)
	waitFor(t, "staleness refresh", func() bool { return p.SnapshotRefreshes() >= 1 })
}

// TestFailoverStalenessGateSemantics drives the composed gate handler
// directly with synthetic metric contexts (the way the dispatch loop
// would): consecutive breaches fire, an under-limit observation resets
// the streak, backup observations are ignored, and two PEs' streaks
// are independent.
func TestFailoverStalenessGateSemantics(t *testing.T) {
	p, svc, _ := failoverCkptFixture(t, time.Second) // limit 1000ms, debounce 2
	jobs := p.Jobs()
	activeAgg, ok := svc.PEOfOperator(jobs[0], apps.TrendAggregateOp)
	if !ok {
		t.Fatal("no aggregation PE")
	}
	ageCtx := func(job ids.JobID, pe ids.PEID, age int64) *core.PEMetricContext {
		return &core.PEMetricContext{
			Job: job, App: "TC", PE: pe, Metric: "lastCheckpointAgeMs", Value: age,
		}
	}
	drive := func(job ids.JobID, pe ids.PEID, age int64) {
		_ = p.gate(ageCtx(job, pe, age), svc.Actions())
	}

	// Backup breaches never count: the gate concerns the active replica.
	drive(jobs[1], activeAgg, 5000)
	drive(jobs[1], activeAgg, 5000)
	if got := p.SnapshotRefreshes(); got != 0 {
		t.Fatalf("backup observations fired the gate: %d", got)
	}
	// One breach, then a healthy observation: the streak resets, so two
	// more breaches are needed before the refresh fires.
	drive(jobs[0], activeAgg, 5000)
	drive(jobs[0], activeAgg, 10) // under limit: reset
	drive(jobs[0], activeAgg, 5000)
	if got := p.SnapshotRefreshes(); got != 0 {
		t.Fatalf("gate fired without consecutive breaches: %d", got)
	}
	drive(jobs[0], activeAgg, 5000)
	if got := p.SnapshotRefreshes(); got != 1 {
		t.Fatalf("two consecutive breaches did not fire: %d", got)
	}
	// Per-PE isolation: interleaved breaches of two PEs advance neither
	// streak to the firing point in fewer than 2 observations each, and
	// an unanchored (-1) observation never reaches the debounce.
	otherPE := activeAgg + 1000 // synthetic second PE of the active job
	drive(jobs[0], activeAgg, 5000)
	drive(jobs[0], otherPE, -1) // never anchored: filtered by the Threshold
	drive(jobs[0], otherPE, 5000)
	if got := p.SnapshotRefreshes(); got != 1 {
		t.Fatalf("interleaved PEs shared a streak: %d", got)
	}
}

func TestFailoverStatusFile(t *testing.T) {
	inst := newInst(t, "h1", "h2", "h3", "h4")
	app, err := apps.TrendApp(apps.TrendConfig{
		Name: "TC", Symbols: "IBM", Seed: 1, Count: 0,
		Period: time.Millisecond, Window: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/status.txt"
	prefix := "pol-sf"
	p := &Failover{
		App: "TC", Replicas: 3, StatusPath: path,
		SubmitParams: func(i int) map[string]string {
			id := apps.ReplicaCollector(prefix, i)
			ops.ResetCollector(id)
			return map[string]string{"collector": id}
		},
	}
	svc, err := core.NewRoutineService(core.Config{
		Name: "sfOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	waitFor(t, "status file", func() bool {
		data, err := os.ReadFile(path)
		return err == nil && strings.Contains(string(data), "replica 0") &&
			strings.Contains(string(data), "active")
	})
}

var _ = ids.InvalidJob
