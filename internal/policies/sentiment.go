// Package policies implements the paper's three use-case ORCA logics
// (§5): adaptation to incoming data distribution via external model
// recomputation (§5.1), replica failover on PE failures (§5.2), and
// on-demand dynamic application composition (§5.3). Each policy is pure
// control logic against the orchestrator API — the applications they
// manage live in internal/apps, keeping control and data processing code
// separate, which is the paper's central design argument.
package policies

import (
	"sync"
	"time"

	"streamorca/internal/core"
	"streamorca/internal/extjob"
	"streamorca/internal/ids"
)

// RatioPoint is one observation of the unknown/known cause ratio at a
// metric epoch — a point on Figure 8's curve.
type RatioPoint struct {
	Epoch uint64
	Ratio float64
}

// ModelRecompute is the §5.1 ORCA logic: it watches the cause matcher's
// custom metrics and, when the unknown/known ratio exceeds the actuation
// threshold, launches the external model-recomputation job (suppressing
// re-triggers for a configurable interval).
type ModelRecompute struct {
	core.Base

	// App names the registered sentiment application; the policy submits
	// it on start with SubmitParams.
	App          string
	SubmitParams map[string]string
	// MatcherOp is the cause matcher's instance name.
	MatcherOp string
	// ModelID and StoreID address the shared model and corpus.
	ModelID string
	StoreID string
	// Threshold is the actuation ratio (paper: 1.0).
	Threshold float64
	// Suppression bounds re-trigger frequency (paper: 10 minutes).
	Suppression time.Duration
	// Runner executes the batch job.
	Runner *extjob.Runner
	// MinSupport is the batch job's cause-frequency threshold.
	MinSupport int

	mu           sync.Mutex
	job          ids.JobID
	known        int64
	unknown      int64
	knownEpoch   uint64
	unknownEpoch uint64
	lastTrigger  time.Time
	hasTriggered bool
	triggers     int
	series       []RatioPoint
}

// HandleOrcaStart registers the custom-metric scope and submits the
// application.
func (p *ModelRecompute) HandleOrcaStart(svc *core.Service, ctx *core.OrcaStartContext) {
	scope := core.NewOperatorMetricScope("causeMetrics").
		AddApplicationFilter(p.App).
		AddOperatorNameFilter(p.MatcherOp).
		AddOperatorMetric("recentKnownCauses", "recentUnknownCauses").
		CustomMetricsOnly()
	if err := svc.RegisterEventScope(scope); err != nil {
		panic(err)
	}
	job, err := svc.SubmitApplication(p.App, p.SubmitParams)
	if err != nil {
		panic(err)
	}
	p.mu.Lock()
	p.job = job
	p.mu.Unlock()
}

// HandleOperatorMetric implements the Figure 6 pattern: record each
// metric with its epoch, and evaluate the actuation condition only when
// both metrics come from the same measurement round.
func (p *ModelRecompute) HandleOperatorMetric(svc *core.Service, ctx *core.OperatorMetricContext, scopes []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ctx.Metric {
	case "recentKnownCauses":
		p.known, p.knownEpoch = ctx.Value, ctx.Epoch
	case "recentUnknownCauses":
		p.unknown, p.unknownEpoch = ctx.Value, ctx.Epoch
	default:
		return
	}
	if p.knownEpoch != p.unknownEpoch || p.known+p.unknown == 0 {
		return
	}
	den := p.known
	if den == 0 {
		den = 1
	}
	ratio := float64(p.unknown) / float64(den)
	p.series = append(p.series, RatioPoint{Epoch: ctx.Epoch, Ratio: ratio})
	if ratio <= p.Threshold {
		return
	}
	now := svc.Clock().Now()
	if p.hasTriggered && now.Sub(p.lastTrigger) < p.Suppression {
		return
	}
	if p.Runner.Running() {
		return
	}
	if err := p.Runner.Submit(extjob.GetStore(p.StoreID), extjob.GetModel(p.ModelID), p.MinSupport, nil); err != nil {
		return
	}
	p.lastTrigger = now
	p.hasTriggered = true
	p.triggers++
}

// Job returns the managed job id.
func (p *ModelRecompute) Job() ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.job
}

// Triggers returns how many batch jobs the policy launched.
func (p *ModelRecompute) Triggers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.triggers
}

// Series returns the recorded ratio-per-epoch curve (Figure 8).
func (p *ModelRecompute) Series() []RatioPoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]RatioPoint(nil), p.series...)
}
