// Package policies implements the paper's three use-case ORCA logics
// (§5) as composable adaptation routines: adaptation to incoming data
// distribution via external model recomputation (§5.1), replica failover
// on PE failures (§5.2), and on-demand dynamic application composition
// (§5.3). Each policy is pure control logic against the orchestrator
// API — the applications they manage live in internal/apps, keeping
// control and data processing code separate, which is the paper's
// central design argument. Cross-cutting activation logic (actuation
// thresholds, suppression windows, per-incident dedup) is expressed
// through the core guard combinators rather than bespoke policy state.
package policies

import (
	"fmt"
	"sync"
	"time"

	"streamorca/internal/apps"
	"streamorca/internal/core"
	"streamorca/internal/extjob"
	"streamorca/internal/ids"
)

// RatioPoint is one observation of the unknown/known cause ratio at a
// metric epoch — a point on Figure 8's curve.
type RatioPoint struct {
	Epoch uint64
	Ratio float64
}

// ModelRecompute is the §5.1 adaptation routine: it watches the cause
// matcher's custom metrics and, when the unknown/known ratio exceeds the
// actuation threshold, launches the external model-recomputation job.
// The ratio test and the re-trigger bound are composed from the shared
// guards (core.Threshold around core.SuppressFor) rather than tracked in
// policy fields.
type ModelRecompute struct {
	// App names the registered sentiment application; the routine submits
	// it during Setup with SubmitParams.
	App          string
	SubmitParams map[string]string
	// MatcherOp is the cause matcher's instance name.
	MatcherOp string
	// ModelID and StoreID address the shared model and corpus.
	ModelID string
	StoreID string
	// Threshold is the actuation ratio (paper: 1.0).
	Threshold float64
	// Suppression bounds re-trigger frequency (paper: 10 minutes).
	Suppression time.Duration
	// Runner executes the batch job.
	Runner *extjob.Runner
	// MinSupport is the batch job's cause-frequency threshold.
	MinSupport int

	mu           sync.Mutex
	job          ids.JobID
	known        int64
	unknown      int64
	knownEpoch   uint64
	unknownEpoch uint64
	triggers     int
	series       []RatioPoint

	// handle is the composed guarded handler, built once in Setup.
	handle core.Handler[core.OperatorMetricContext]
}

// Name implements core.Routine.
func (p *ModelRecompute) Name() string { return "modelRecompute" }

// Setup submits the application and subscribes the guarded ratio
// handler to the cause matcher's custom metrics. Errors (unknown
// application, rejected submission, duplicate scope key) propagate out
// of Service.Start.
func (p *ModelRecompute) Setup(sc *core.SetupContext) error {
	job, err := sc.Actions().SubmitApplication(p.App, p.SubmitParams)
	if err != nil {
		return fmt.Errorf("modelRecompute: submit %s: %w", p.App, err)
	}
	p.mu.Lock()
	p.job = job
	p.mu.Unlock()
	scope := core.NewOperatorMetricScope("causeMetrics").
		AddApplicationFilter(p.App).
		AddOperatorNameFilter(p.MatcherOp).
		AddOperatorMetric(apps.MetricRecentKnownCauses, apps.MetricRecentUnknownCauses).
		CustomMetricsOnly()
	p.handle = core.Threshold(p.observeRatio, p.Threshold,
		core.SuppressFor(p.Suppression, p.recompute))
	return sc.Subscribe(core.OnOperatorMetric(scope, p.handle))
}

// observeRatio implements the Figure 6 pattern as a Threshold guard
// observation: record each metric with its epoch and report a ratio only
// when both metrics come from the same measurement round.
func (p *ModelRecompute) observeRatio(ctx *core.OperatorMetricContext) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ctx.Metric {
	case apps.MetricRecentKnownCauses:
		p.known, p.knownEpoch = ctx.Value, ctx.Epoch
	case apps.MetricRecentUnknownCauses:
		p.unknown, p.unknownEpoch = ctx.Value, ctx.Epoch
	default:
		return 0, false
	}
	if p.knownEpoch != p.unknownEpoch || p.known+p.unknown == 0 {
		return 0, false
	}
	den := p.known
	if den == 0 {
		den = 1
	}
	ratio := float64(p.unknown) / float64(den)
	p.series = append(p.series, RatioPoint{Epoch: ctx.Epoch, Ratio: ratio})
	return ratio, true
}

// recompute launches the batch job. Skipping while a job is in flight
// (or when submission is refused) leaves the suppression window unarmed,
// so the next crossing retries.
func (p *ModelRecompute) recompute(ctx *core.OperatorMetricContext, act *core.Actions) error {
	if p.Runner.Running() {
		return core.ErrSkipped
	}
	if err := p.Runner.Submit(extjob.GetStore(p.StoreID), extjob.GetModel(p.ModelID), p.MinSupport, nil); err != nil {
		return fmt.Errorf("modelRecompute: batch job: %w", err)
	}
	p.mu.Lock()
	p.triggers++
	p.mu.Unlock()
	return nil
}

// Job returns the managed job id.
func (p *ModelRecompute) Job() ids.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.job
}

// Triggers returns how many batch jobs the policy launched.
func (p *ModelRecompute) Triggers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.triggers
}

// Series returns the recorded ratio-per-epoch curve (Figure 8).
func (p *ModelRecompute) Series() []RatioPoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]RatioPoint(nil), p.series...)
}
