package sam

import (
	"fmt"
	"sort"

	"streamorca/internal/adl"
	"streamorca/internal/cluster"
)

// place assigns each PE partition of the application to a host, honouring
// host pools (explicit hosts, tags, size limits), pool exclusivity, and
// per-PE host isolation. It returns the partition→host assignment and the
// hosts to reserve exclusively for this job.
//
// Placement is deterministic: candidates are considered in name order and
// ties break toward the lexicographically smaller host.
func place(app *adl.Application, hosts []cluster.HostInfo, reservedByOther, occupiedByOther map[string]bool) (map[int]string, []string, error) {
	alive := make([]cluster.HostInfo, 0, len(hosts))
	for _, h := range hosts {
		if h.Up && !reservedByOther[h.Name] {
			alive = append(alive, h)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].Name < alive[j].Name })
	if len(alive) == 0 {
		return nil, nil, fmt.Errorf("no available hosts")
	}

	pools := make(map[string]adl.HostPool, len(app.HostPools)+1)
	for _, p := range app.HostPools {
		pools[p.Name] = p
	}
	if _, ok := pools[adl.DefaultPool]; !ok {
		pools[adl.DefaultPool] = adl.HostPool{Name: adl.DefaultPool}
	}

	// Resolve each pool to its candidate hosts once.
	candidates := make(map[string][]string)
	var reserve []string
	reserveSet := make(map[string]bool)
	for name, p := range pools {
		var cands []string
		for _, h := range alive {
			if !poolAdmits(p, h) {
				continue
			}
			if p.Exclusive && occupiedByOther[h.Name] {
				continue
			}
			cands = append(cands, h.Name)
		}
		sort.Strings(cands)
		if p.Size > 0 && len(cands) > p.Size {
			cands = cands[:p.Size]
		}
		candidates[name] = cands
		if p.Exclusive {
			for _, h := range cands {
				if !reserveSet[h] {
					reserveSet[h] = true
					reserve = append(reserve, h)
				}
			}
		}
	}
	sort.Strings(reserve)

	baseLoad := make(map[string]int, len(alive))
	for _, h := range alive {
		baseLoad[h.Name] = h.PEs
	}
	assigned := make(map[string]int) // PEs of this job per host
	out := make(map[int]string, len(app.PEs))

	parts := append([]adl.PE(nil), app.PEs...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Index < parts[j].Index })
	for _, part := range parts {
		pool := part.Pool
		if pool == "" {
			pool = adl.DefaultPool
		}
		cands, ok := candidates[pool]
		if !ok {
			return nil, nil, fmt.Errorf("partition %d references unknown pool %q", part.Index, pool)
		}
		best := ""
		bestLoad := 0
		for _, h := range cands {
			if part.IsolatePE && assigned[h] > 0 {
				continue
			}
			load := baseLoad[h] + assigned[h]
			if best == "" || load < bestLoad {
				best, bestLoad = h, load
			}
		}
		if best == "" {
			return nil, nil, fmt.Errorf("no host available in pool %q for partition %d", pool, part.Index)
		}
		out[part.Index] = best
		assigned[best]++
	}
	return out, reserve, nil
}

// poolAdmits reports whether a host belongs to a pool: explicit host
// lists win, then tag matching, and a pool with neither admits every
// host.
func poolAdmits(p adl.HostPool, h cluster.HostInfo) bool {
	if len(p.Hosts) > 0 {
		for _, name := range p.Hosts {
			if name == h.Name {
				return true
			}
		}
		return false
	}
	if len(p.Tags) > 0 {
		for _, want := range p.Tags {
			for _, got := range h.Tags {
				if want == got {
					return true
				}
			}
		}
		return false
	}
	return true
}
