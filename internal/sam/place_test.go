package sam

import (
	"strings"
	"testing"

	"streamorca/internal/adl"
	"streamorca/internal/cluster"
)

func hosts(names ...string) []cluster.HostInfo {
	out := make([]cluster.HostInfo, len(names))
	for i, n := range names {
		out[i] = cluster.HostInfo{Name: n, Up: true}
	}
	return out
}

func appWithPEs(pes ...adl.PE) *adl.Application {
	return &adl.Application{Name: "X", PEs: pes}
}

func TestPlaceSpreadsByLoad(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0}, adl.PE{Index: 1}, adl.PE{Index: 2}, adl.PE{Index: 3})
	assign, reserve, err := place(app, hosts("h1", "h2"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reserve) != 0 {
		t.Fatalf("reserved %v for non-exclusive pools", reserve)
	}
	counts := map[string]int{}
	for _, h := range assign {
		counts[h]++
	}
	if counts["h1"] != 2 || counts["h2"] != 2 {
		t.Fatalf("assignment unbalanced: %v", assign)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0}, adl.PE{Index: 1})
	a1, _, err := place(app, hosts("h2", "h1"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := place(app, hosts("h1", "h2"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a1 {
		if a1[k] != a2[k] {
			t.Fatalf("placement differs: %v vs %v", a1, a2)
		}
	}
}

func TestPlaceExplicitHostPool(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0, Pool: "special"})
	app.HostPools = []adl.HostPool{{Name: "special", Hosts: []string{"h3"}}}
	assign, _, err := place(app, hosts("h1", "h2", "h3"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != "h3" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestPlaceTagPool(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0, Pool: "gpu"})
	app.HostPools = []adl.HostPool{{Name: "gpu", Tags: []string{"gpu"}}}
	hs := hosts("h1", "h2")
	hs[1].Tags = []string{"gpu"}
	assign, _, err := place(app, hs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != "h2" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestPlacePoolSizeLimit(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0, Pool: "p"}, adl.PE{Index: 1, Pool: "p"})
	app.HostPools = []adl.HostPool{{Name: "p", Size: 1}}
	assign, _, err := place(app, hosts("h1", "h2", "h3"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != "h1" || assign[1] != "h1" {
		t.Fatalf("size-limited pool spilled: %v", assign)
	}
}

func TestPlaceExclusivePoolReservesAndExcludes(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0, Pool: "ex"})
	app.HostPools = []adl.HostPool{{Name: "ex", Size: 1, Exclusive: true}}
	// h1 occupied by another job: exclusive pool must skip it.
	assign, reserve, err := place(app, hosts("h1", "h2"), nil, map[string]bool{"h1": true})
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != "h2" || len(reserve) != 1 || reserve[0] != "h2" {
		t.Fatalf("assign=%v reserve=%v", assign, reserve)
	}
}

func TestPlaceSkipsReservedHosts(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0})
	assign, _, err := place(app, hosts("h1", "h2"), map[string]bool{"h1": true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != "h2" {
		t.Fatalf("assigned to reserved host: %v", assign)
	}
}

func TestPlaceIsolatePE(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0, IsolatePE: true}, adl.PE{Index: 1, IsolatePE: true})
	assign, _, err := place(app, hosts("h1", "h2"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] == assign[1] {
		t.Fatalf("isolated PEs share a host: %v", assign)
	}
	// Three isolated PEs on two hosts must fail.
	app3 := appWithPEs(adl.PE{Index: 0, IsolatePE: true}, adl.PE{Index: 1, IsolatePE: true}, adl.PE{Index: 2, IsolatePE: true})
	if _, _, err := place(app3, hosts("h1", "h2"), nil, nil); err == nil {
		t.Fatal("over-constrained isolation placed")
	}
}

func TestPlaceErrors(t *testing.T) {
	app := appWithPEs(adl.PE{Index: 0})
	if _, _, err := place(app, nil, nil, nil); err == nil || !strings.Contains(err.Error(), "no available hosts") {
		t.Fatalf("err = %v", err)
	}
	down := hosts("h1")
	down[0].Up = false
	if _, _, err := place(app, down, nil, nil); err == nil {
		t.Fatal("placed on a dead host")
	}
	appBad := appWithPEs(adl.PE{Index: 0, Pool: "ghost"})
	if _, _, err := place(appBad, hosts("h1"), nil, nil); err == nil {
		t.Fatal("unknown pool placed")
	}
}

func TestPoolAdmits(t *testing.T) {
	h := cluster.HostInfo{Name: "h1", Tags: []string{"ssd"}}
	if !poolAdmits(adl.HostPool{}, h) {
		t.Fatal("open pool rejected host")
	}
	if !poolAdmits(adl.HostPool{Hosts: []string{"h1"}}, h) {
		t.Fatal("explicit pool rejected listed host")
	}
	if poolAdmits(adl.HostPool{Hosts: []string{"h2"}}, h) {
		t.Fatal("explicit pool admitted unlisted host")
	}
	if !poolAdmits(adl.HostPool{Tags: []string{"ssd"}}, h) {
		t.Fatal("tag pool rejected tagged host")
	}
	if poolAdmits(adl.HostPool{Tags: []string{"gpu"}}, h) {
		t.Fatal("tag pool admitted untagged host")
	}
}

func TestSubstituteParams(t *testing.T) {
	app := &adl.Application{
		Name: "X",
		Operators: []adl.Operator{{
			Name: "a", Kind: "Beacon",
			Params: map[string]string{"rate": "{{rate}}", "fixed": "7", "pair": "{{a}}-{{b}}"},
		}},
		PEs: []adl.PE{{Index: 0, Operators: []string{"a"}}},
	}
	substituteParams(app, map[string]string{"rate": "100", "a": "x", "b": "y"})
	p := app.Operators[0].Params
	if p["rate"] != "100" || p["fixed"] != "7" || p["pair"] != "x-y" {
		t.Fatalf("params = %v", p)
	}
	// No params: no-op.
	substituteParams(app, nil)
}
