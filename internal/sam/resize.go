package sam

import (
	"fmt"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/opapi"
	"streamorca/internal/pe"
)

// ResizeRegion changes the width of a job's key-partitioned parallel
// region at runtime: it recompiles the job's ADL to the new width
// (compiler.ResizeRegion), stops the region's PEs, migrates the
// replicas' per-key operator state between the two partitionings
// through the checkpoint store, starts the region at the new width, and
// rewires every stream link touching it. PEs outside the region keep
// running untouched; the split/merge pair insulates the neighbours from
// the width change.
//
// State migration is best-effort, in the spirit of "a bad snapshot
// never blocks a restart": the old replicas are checkpointed, their
// snapshots folded together (MergeState) and re-cut along the new
// partitioning (SplitState), and each cut saved under the new replica's
// snapshot key so the restarted replica restores exactly the keys the
// resized hash split will route to it. Any failure on that path —
// unreadable snapshot, store error, a kind that is not a
// PartitionedStateOperator — degrades to a region-wide cold start: all
// region snapshots are deleted and the region restarts empty, losing
// window state but never wedging. In-flight tuples of the region are
// lost, as in every restart (§5.2 loss semantics).
func (s *SAM) ResizeRegion(jobID ids.JobID, region string, width int) error {
	if width < 1 {
		return fmt.Errorf("sam: resize region %q: width %d < 1", region, width)
	}

	s.mu.Lock()
	j, ok := s.jobs[jobID]
	if !ok || j.cancelling {
		s.mu.Unlock()
		return fmt.Errorf("sam: no job %s", jobID)
	}
	r := j.app.Region(region)
	if r == nil {
		s.mu.Unlock()
		return fmt.Errorf("sam: job %s has no region %q", jobID, region)
	}
	if r.Width == width {
		s.mu.Unlock()
		return nil
	}
	resized, err := compiler.ResizeRegion(j.app, region, width)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("sam: resize region %q of %s: %w", region, jobID, err)
	}
	newR := resized.Region(region)
	old := *r // copy: j.app is swapped below

	// Region PEs before the resize: split, merge, and every old replica.
	regionIdx := func(app *adl.Application, names ...string) map[int]bool {
		out := make(map[int]bool, len(names))
		for _, n := range names {
			if idx := app.PEOfOperator(n); idx >= 0 {
				out[idx] = true
			}
		}
		return out
	}
	oldIdx := regionIdx(j.app, append([]string{old.Split, old.Merge}, old.Replicas...)...)

	oldReplicas := make([]replicaState, 0, old.Width)
	kind := ""
	if op := j.app.OperatorByName(old.Replicas[0]); op != nil {
		kind = op.Kind
	}
	var toStop []*pe.PE
	for idx := range oldIdx {
		if rp := j.pes[idx]; rp != nil {
			if rp.state == "running" && rp.container != nil {
				rp.state = "stopping"
				toStop = append(toStop, rp.container)
			}
		}
	}
	for _, name := range old.Replicas {
		rp := j.pes[j.app.PEOfOperator(name)]
		if rp == nil {
			s.mu.Unlock()
			return fmt.Errorf("sam: resize region %q of %s: replica %q has no PE", region, jobID, name)
		}
		oldReplicas = append(oldReplicas, replicaState{
			name:      name,
			key:       ckptKey(j.id, rp.id),
			container: rp.container,
			running:   rp.state == "stopping", // was running before we marked it
		})
	}

	// Mint runtime PEs for replicas the resize adds, so their snapshot
	// keys exist before migration writes to them. Removed replicas drop
	// out of the job's tables; a late exit notification for one simply
	// finds no PE.
	survivors := min(old.Width, width)
	newKeys := make([]string, width)
	for p := 0; p < survivors; p++ {
		rp := j.pes[j.app.PEOfOperator(old.Replicas[p])]
		newKeys[p] = ckptKey(j.id, rp.id)
	}
	var added []*jpe
	for p := survivors; p < width; p++ {
		idx := resized.PEOfOperator(newR.Replicas[p])
		s.nextPE++
		rp := &jpe{index: idx, id: ids.PEID(s.nextPE), state: "stopped"}
		added = append(added, rp)
		newKeys[p] = ckptKey(j.id, rp.id)
	}
	var removedKeys []string
	for p := width; p < old.Width; p++ {
		removedKeys = append(removedKeys, oldReplicas[p].key)
	}
	s.mu.Unlock()

	// Freshen the snapshots about to be migrated, then quiesce the
	// region. Checkpoint failures are tolerable: migration then moves
	// the previous periodic snapshot (or cold-starts the region).
	for _, or := range oldReplicas {
		if or.running && or.container != nil && s.cfg.Ckpt != nil {
			if _, err := or.container.Checkpoint(); err != nil {
				s.cfg.Logf("sam: resize %s/%s: pre-stop checkpoint of %s: %v", jobID, region, or.name, err)
			}
		}
	}
	for _, c := range toStop {
		c.Stop()
	}

	if s.cfg.Ckpt != nil {
		if err := s.migrateRegionState(oldReplicas, newR, kind, newKeys, width); err != nil {
			s.cfg.Logf("sam: resize %s/%s: state migration failed (%v); cold-starting region", jobID, region, err)
			for _, k := range append(append([]string(nil), newKeys...), keysOf(oldReplicas)...) {
				if derr := s.cfg.Ckpt.Delete(k); derr != nil {
					s.cfg.Logf("sam: resize %s/%s: drop snapshot %s: %v", jobID, region, k, derr)
				}
			}
		} else {
			// Removed replicas' snapshots are garbage once their keys
			// migrated into the surviving partitions.
			for _, k := range removedKeys {
				if derr := s.cfg.Ckpt.Delete(k); derr != nil {
					s.cfg.Logf("sam: resize %s/%s: drop snapshot %s: %v", jobID, region, k, derr)
				}
			}
		}
	}

	// Swap in the resized ADL and restart the region.
	s.mu.Lock()
	removed := make(map[string]bool, old.Width)
	for p := width; p < old.Width; p++ {
		removed[old.Replicas[p]] = true
	}
	for idx := range oldIdx {
		rp := j.pes[idx]
		if rp == nil {
			continue
		}
		ops := j.app.OperatorsInPE(idx)
		if len(ops) == 1 && removed[ops[0]] {
			delete(j.pes, idx)
			delete(j.byID, rp.id)
		}
	}
	j.app = resized
	assign, _, perr := place(resized, s.cfg.Cluster.Hosts(), s.reservedByOther(j.id), s.occupiedByOther(j.id))
	if perr != nil {
		s.mu.Unlock()
		return fmt.Errorf("sam: resize region %q of %s: place: %w", region, jobID, perr)
	}
	for _, rp := range added {
		rp.host = assign[rp.index]
		j.pes[rp.index] = rp
		j.byID[rp.id] = rp
	}
	newIdx := regionIdx(resized, append([]string{newR.Split, newR.Merge}, newR.Replicas...)...)
	type startup struct {
		rp  *jpe
		cfg pe.Config
	}
	var starts []startup
	for idx := range newIdx {
		rp := j.pes[idx]
		if rp == nil {
			s.mu.Unlock()
			return fmt.Errorf("sam: resize region %q of %s: no runtime PE for partition %d", region, jobID, idx)
		}
		if !s.cfg.Cluster.HostUp(rp.host) {
			rp.host = assign[rp.index]
		}
		cfg, cerr := s.peConfig(j, rp)
		if cerr != nil {
			s.mu.Unlock()
			return fmt.Errorf("sam: resize region %q of %s: %w", region, jobID, cerr)
		}
		cfg.Ckpt.Restore = cfg.Ckpt.Store != nil
		starts = append(starts, startup{rp: rp, cfg: cfg})
	}
	s.mu.Unlock()

	var startErr error
	for _, st := range starts {
		c, err := s.cfg.Cluster.StartPE(st.rp.host, st.cfg)
		if err != nil {
			if startErr == nil {
				startErr = fmt.Errorf("sam: resize region %q of %s: start PE %d: %w", region, jobID, st.rp.index, err)
			}
			continue
		}
		s.mu.Lock()
		st.rp.container = c
		st.rp.state = "running"
		s.mu.Unlock()
	}

	// Rewire: every link touching a region PE (old or new index) is
	// stale — its endpoint container was replaced or removed — so drop
	// them all and mint fresh links from the resized ADL's connections.
	s.mu.Lock()
	for idx := range newIdx {
		oldIdx[idx] = true
	}
	for lid, l := range s.links {
		if (l.fromJob == jobID && oldIdx[l.fromIdx]) || (l.toJob == jobID && oldIdx[l.toIdx]) {
			if l.link != nil {
				l.link.Discard()
				l.link = nil
			}
			delete(s.links, lid)
		}
	}
	regionOps := map[string]bool{newR.Split: true, newR.Merge: true}
	for _, n := range newR.Replicas {
		regionOps[n] = true
	}
	var wireErr error
	for _, c := range resized.Connects {
		if !regionOps[c.FromOp] && !regionOps[c.ToOp] {
			continue
		}
		fromIdx := resized.PEOfOperator(c.FromOp)
		toIdx := resized.PEOfOperator(c.ToOp)
		if fromIdx == toIdx {
			continue // fused: wired inside the container
		}
		s.nextLink++
		l := &xlink{
			id:      fmt.Sprintf("static-%d-%d", j.id, s.nextLink),
			fromJob: j.id, fromIdx: fromIdx, fromOp: c.FromOp, fromPort: c.FromPort,
			toJob: j.id, toIdx: toIdx, toOp: c.ToOp, toPort: c.ToPort,
		}
		s.links[l.id] = l
		if err := s.establishLocked(l); err != nil && wireErr == nil {
			wireErr = err
		}
	}
	s.mu.Unlock()

	if startErr != nil {
		return startErr
	}
	if wireErr != nil {
		return fmt.Errorf("sam: resize region %q of %s: wire: %w", region, jobID, wireErr)
	}
	s.cfg.Logf("sam: resized region %q of %s: width %d -> %d", region, jobID, old.Width, width)
	return nil
}

// replicaState carries what state migration needs to know about one
// pre-resize replica.
type replicaState struct {
	name      string
	key       string // snapshot key (old partitioning)
	container *pe.PE
	running   bool
}

func keysOf(rs []replicaState) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.key
	}
	return out
}

// migrateRegionState re-cuts the old replicas' checkpointed state along
// the new partitioning: every old replica's snapshot section is folded
// into one scratch instance of the replica kind, and the folded state
// is split into width cuts saved under the new replicas' snapshot keys.
// Returning an error makes the caller cold-start the whole region.
func (s *SAM) migrateRegionState(oldReplicas []replicaState, newR *adl.Region, kind string, newKeys []string, width int) error {
	op, err := s.cfg.Registry.New(kind)
	if err != nil {
		return err
	}
	scratch, ok := op.(opapi.PartitionedStateOperator)
	if !ok {
		if _, stateful := op.(opapi.StatefulOperator); !stateful {
			// A stateless kind has nothing to migrate: the region cold
			// starts by construction, which is exact, not degraded.
			return nil
		}
		return fmt.Errorf("kind %s is stateful but not partition-migratable", kind)
	}

	loaded := 0
	// The re-cut snapshots inherit the oldest contributing capture
	// instant — migrated state is only as fresh as its stalest source —
	// and record "unknown" if any source predates timestamped snapshots.
	var oldest time.Time
	capturesKnown := true
	for _, or := range oldReplicas {
		data, ok, err := s.cfg.Ckpt.Load(or.key)
		if err != nil {
			return fmt.Errorf("load %s: %w", or.key, err)
		}
		if !ok {
			continue // never checkpointed: empty state
		}
		snap, err := ckpt.Parse(data)
		if err != nil {
			return fmt.Errorf("parse %s: %w", or.key, err)
		}
		folded := false
		for _, sec := range snap.Sections() {
			if sec.Name != or.name || sec.Kind != kind {
				continue
			}
			if err := mergeSection(scratch, sec, loaded == 0); err != nil {
				return fmt.Errorf("fold %s: %w", or.name, err)
			}
			loaded++
			folded = true
		}
		if folded {
			if at, ok := snap.CapturedAt(); !ok {
				capturesKnown = false
			} else if oldest.IsZero() || at.Before(oldest) {
				oldest = at
			}
		}
	}
	if loaded == 0 {
		return nil // no state anywhere: nothing to write, clean cold start
	}
	if !capturesKnown {
		oldest = time.Time{}
	}

	for p := 0; p < width; p++ {
		w := ckpt.NewWriterAt(oldest)
		err := w.Section(newR.Replicas[p], kind, func(e *ckpt.Encoder) error {
			return scratch.SplitState(e, p, width)
		})
		if err == nil {
			err = s.cfg.Ckpt.Save(newKeys[p], w.Finish())
		}
		w.Close()
		if err != nil {
			return fmt.Errorf("cut partition %d: %w", p, err)
		}
	}
	return nil
}

// mergeSection folds one snapshot section into the scratch operator,
// containing panics like the PE's restore path: a pathological payload
// must degrade to a region cold start, never crash SAM.
func mergeSection(scratch opapi.PartitionedStateOperator, sec ckpt.Section, first bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("merge panicked: %v", r)
		}
	}()
	dec := sec.Decoder()
	if first {
		err = scratch.RestoreState(dec)
	} else {
		err = scratch.MergeState(dec)
	}
	if err == nil {
		err = dec.Err()
	}
	return err
}
