package sam_test

import (
	"fmt"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/load"
	"streamorca/internal/opapi"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
)

var keyedS = tuple.MustSchema(
	tuple.Attribute{Name: "user", Type: tuple.String},
	tuple.Attribute{Name: "seq", Type: tuple.Int},
)

// regionApp builds LoadSource -> [split | KeyedWorker xN | merge] ->
// CollectSink: the minimal job with a stateful parallel region whose
// per-key counters a width change must migrate.
func regionApp(t *testing.T, name, injID, collector string, width int) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	src := b.AddOperator("src", load.KindLoadSource).Out(keyedS).
		Param("injectorId", injID)
	work := b.AddOperator("work", load.KindKeyedWorker).In(keyedS).Out(keyedS).
		Param("keyAttr", "user").Parallel(width)
	sink := b.AddOperator("sink", ops.KindCollectSink).In(keyedS).
		Param("collectorId", collector)
	b.Connect(src, 0, work, 0)
	b.Connect(work, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// newCkptInstance is newInstance with a snapshot store and no periodic
// checkpointing, so the only snapshots in the store are the ones the
// resize path itself writes (or the test writes deliberately).
func newCkptInstance(t *testing.T, store ckpt.Store, hostNames ...string) *platform.Instance {
	t.Helper()
	specs := make([]platform.HostSpec, len(hostNames))
	for i, n := range hostNames {
		specs[i] = platform.HostSpec{Name: n}
	}
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           specs,
		MetricsInterval: time.Hour,
		Checkpoint:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

// feedKeys pushes count tuples per key through the injector and waits
// until the sink has seen them all, so no region state is in flight
// when the resize starts.
func feedKeys(t *testing.T, inj *load.Injector, collector string, keys map[string]int64, expectAtSink int) {
	t.Helper()
	seq := int64(0)
	for k, n := range keys {
		for i := int64(0); i < n; i++ {
			seq++
			inj.Push(tuple.Build(keyedS).Str("user", k).Int("seq", seq).Done(), nil)
		}
	}
	waitCond(t, fmt.Sprintf("%d tuples at sink", expectAtSink), func() bool {
		return ops.Collector(collector).Len() == expectAtSink
	})
}

// replicaKeys returns each replica's snapshot-store key, in partition
// order, resolved from the job's current ADL and placement.
func replicaKeys(t *testing.T, inst *platform.Instance, jobID ids.JobID, region string) ([]string, []string) {
	t.Helper()
	app, ok := inst.SAM.JobADL(jobID)
	if !ok {
		t.Fatalf("no ADL for job %s", jobID)
	}
	r := app.Region(region)
	if r == nil {
		t.Fatalf("job %s has no region %q", jobID, region)
	}
	placement, _, ok := inst.SAM.PEPlacement(jobID)
	if !ok {
		t.Fatalf("no placement for job %s", jobID)
	}
	keys := make([]string, len(r.Replicas))
	for p, name := range r.Replicas {
		idx := app.PEOfOperator(name)
		peID, ok := placement[idx]
		if !ok {
			t.Fatalf("replica %q (PE index %d) has no placement", name, idx)
		}
		keys[p] = fmt.Sprintf("%s/%s", jobID, peID)
	}
	return keys, append([]string(nil), r.Replicas...)
}

// snapshotCounts decodes one replica's KeyedWorker counters from its
// snapshot in the store. A missing snapshot fails the test.
func snapshotCounts(t *testing.T, store ckpt.Store, key, replica string) map[string]int64 {
	t.Helper()
	data, ok, err := store.Load(key)
	if err != nil {
		t.Fatalf("load %s: %v", key, err)
	}
	if !ok {
		t.Fatalf("no snapshot under %s", key)
	}
	snap, err := ckpt.Parse(data)
	if err != nil {
		t.Fatalf("parse %s: %v", key, err)
	}
	for _, sec := range snap.Sections() {
		if sec.Name != replica || sec.Kind != load.KindKeyedWorker {
			continue
		}
		d := sec.Decoder()
		n := d.Uint()
		counts := make(map[string]int64, n)
		for i := uint64(0); i < n; i++ {
			k := d.Str()
			counts[k] = d.Int()
		}
		if err := d.Err(); err != nil {
			t.Fatalf("decode %s: %v", key, err)
		}
		return counts
	}
	t.Fatalf("snapshot %s has no section for %s", key, replica)
	return nil
}

// checkPartitioning asserts the per-replica counts are exactly a
// width-way partition of want: every key present, on the partition the
// split's hash routes it to, exactly once, with its count intact.
func checkPartitioning(t *testing.T, perReplica []map[string]int64, want map[string]int64) {
	t.Helper()
	width := len(perReplica)
	seen := make(map[string]int64, len(want))
	for p, counts := range perReplica {
		for k, v := range counts {
			if _, dup := seen[k]; dup {
				t.Errorf("key %q present in more than one partition", k)
			}
			seen[k] = v
			if got := opapi.PartitionOf(k, 0, width); got != p {
				t.Errorf("key %q landed on partition %d, hash says %d", k, p, got)
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("partitions hold %d keys, fed %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Errorf("key %q: count %d, want %d", k, seen[k], v)
		}
	}
}

func runningRegionPEs(t *testing.T, inst *platform.Instance, jobID ids.JobID) {
	t.Helper()
	waitCond(t, "all PEs running", func() bool {
		info, ok := inst.SAM.Job(jobID)
		if !ok {
			return false
		}
		for _, pe := range info.PEs {
			if pe.State != "running" {
				return false
			}
		}
		return true
	})
}

func fedBatch(n int, prefix string) map[string]int64 {
	keys := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		keys[fmt.Sprintf("%s%02d", prefix, i)] = int64(i%5 + 1)
	}
	return keys
}

func total(keys map[string]int64) int {
	n := int64(0)
	for _, v := range keys {
		n += v
	}
	return int(n)
}

// TestResizeGrowMigratesEveryKey: after a 2->3 resize, the three new
// replica snapshots are exactly a 3-way re-cut of the old per-key
// state — every group's window present, once, on the partition the
// widened hash split will route it to — and the region keeps
// processing at the new width.
func TestResizeGrowMigratesEveryKey(t *testing.T) {
	store := ckpt.NewMemStore()
	inst := newCkptInstance(t, store, "h1", "h2", "h3")
	ops.ResetCollector("rzGrow")
	inj := load.InjectorFor("rzGrowInj")

	jobID, err := inst.SAM.SubmitJob(regionApp(t, "Grow", "rzGrowInj", "rzGrow", 2), sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runningRegionPEs(t, inst, jobID)
	fed := fedBatch(30, "u")
	feedKeys(t, inj, "rzGrow", fed, total(fed))

	if err := inst.SAM.ResizeRegion(jobID, "work", 3); err != nil {
		t.Fatal(err)
	}
	runningRegionPEs(t, inst, jobID)

	keys, replicas := replicaKeys(t, inst, jobID, "work")
	if len(keys) != 3 {
		t.Fatalf("replica keys after grow: %v", keys)
	}
	perReplica := make([]map[string]int64, len(keys))
	for p := range keys {
		perReplica[p] = snapshotCounts(t, store, keys[p], replicas[p])
	}
	checkPartitioning(t, perReplica, fed)

	// The widened region still moves tuples end to end.
	more := fedBatch(10, "v")
	feedKeys(t, inj, "rzGrow", more, total(fed)+total(more))
}

// TestResizeShrinkMergesWithoutDuplicates: a 3->2 resize folds the
// retiring replica's keys into the survivors — no key duplicated, no
// count lost — and deletes the retired replica's snapshot.
func TestResizeShrinkMergesWithoutDuplicates(t *testing.T) {
	store := ckpt.NewMemStore()
	inst := newCkptInstance(t, store, "h1", "h2", "h3")
	ops.ResetCollector("rzShrink")
	inj := load.InjectorFor("rzShrinkInj")

	jobID, err := inst.SAM.SubmitJob(regionApp(t, "Shrink", "rzShrinkInj", "rzShrink", 3), sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runningRegionPEs(t, inst, jobID)
	fed := fedBatch(30, "u")
	feedKeys(t, inj, "rzShrink", fed, total(fed))

	wideKeys, _ := replicaKeys(t, inst, jobID, "work")
	retired := wideKeys[2]

	if err := inst.SAM.ResizeRegion(jobID, "work", 2); err != nil {
		t.Fatal(err)
	}
	runningRegionPEs(t, inst, jobID)

	keys, replicas := replicaKeys(t, inst, jobID, "work")
	if len(keys) != 2 {
		t.Fatalf("replica keys after shrink: %v", keys)
	}
	perReplica := make([]map[string]int64, len(keys))
	for p := range keys {
		perReplica[p] = snapshotCounts(t, store, keys[p], replicas[p])
	}
	checkPartitioning(t, perReplica, fed)

	if _, ok, err := store.Load(retired); err != nil || ok {
		t.Fatalf("retired replica snapshot still in store (ok=%v err=%v)", ok, err)
	}

	more := fedBatch(10, "v")
	feedKeys(t, inj, "rzShrink", more, total(fed)+total(more))
}

// TestResizeCorruptSnapshotColdStarts: a snapshot that fails to parse
// mid-migration degrades the resize to a region-wide cold start — the
// resize still succeeds, every PE comes back running, all region
// snapshots are dropped, and the region processes new load with fresh
// state. The bad snapshot loses window state; it never wedges the
// region.
func TestResizeCorruptSnapshotColdStarts(t *testing.T) {
	store := ckpt.NewMemStore()
	inst := newCkptInstance(t, store, "h1", "h2", "h3")
	ops.ResetCollector("rzCorrupt")
	inj := load.InjectorFor("rzCorruptInj")

	jobID, err := inst.SAM.SubmitJob(regionApp(t, "Corrupt", "rzCorruptInj", "rzCorrupt", 2), sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runningRegionPEs(t, inst, jobID)
	fed := fedBatch(20, "u")
	feedKeys(t, inj, "rzCorrupt", fed, total(fed))

	// Stop replica 0 so the resize's pre-stop checkpoint skips it, then
	// plant garbage under its snapshot key: migration must hit the
	// corrupt bytes, not a freshly rewritten snapshot.
	oldKeys, _ := replicaKeys(t, inst, jobID, "work")
	app, _ := inst.SAM.JobADL(jobID)
	placement, _, _ := inst.SAM.PEPlacement(jobID)
	r0 := placement[app.PEOfOperator(app.Region("work").Replicas[0])]
	if err := inst.SAM.StopPE(r0); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "replica 0 stopped", func() bool {
		info, _ := inst.SAM.Job(jobID)
		for _, pe := range info.PEs {
			if pe.ID == r0 {
				return pe.State == "stopped"
			}
		}
		return false
	})
	if err := store.Save(oldKeys[0], []byte("this is not an ORCK snapshot")); err != nil {
		t.Fatal(err)
	}

	if err := inst.SAM.ResizeRegion(jobID, "work", 3); err != nil {
		t.Fatalf("resize with corrupt snapshot must cold-start, not fail: %v", err)
	}
	runningRegionPEs(t, inst, jobID)

	// Cold start dropped every region snapshot.
	newKeys, replicas := replicaKeys(t, inst, jobID, "work")
	for _, k := range append(append([]string(nil), newKeys...), oldKeys...) {
		if _, ok, err := store.Load(k); err != nil || ok {
			t.Fatalf("snapshot %s survived the cold start (ok=%v err=%v)", k, ok, err)
		}
	}

	// The region is live and its state is fresh: new tuples flow, and a
	// checkpoint taken afterwards holds only the new keys.
	more := fedBatch(12, "w")
	feedKeys(t, inj, "rzCorrupt", more, total(fed)+total(more))
	placement, _, _ = inst.SAM.PEPlacement(jobID)
	app, _ = inst.SAM.JobADL(jobID)
	perReplica := make([]map[string]int64, len(replicas))
	for p, name := range replicas {
		if err := inst.SAM.CheckpointPE(placement[app.PEOfOperator(name)]); err != nil {
			t.Fatal(err)
		}
		perReplica[p] = snapshotCounts(t, store, newKeys[p], name)
	}
	checkPartitioning(t, perReplica, more)
}
