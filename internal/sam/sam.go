// Package sam implements the Streams Application Manager daemon (§2.2):
// it receives application submission and cancellation requests, spawns the
// job's PEs on hosts according to placement constraints, stops and
// restarts PEs, routes import/export stream connections between running
// jobs, and — when SRM reports a PE crash — identifies the orchestrator
// managing the job and pushes the failure notification to it (§4.2).
package sam

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/cluster"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/pe"
	"streamorca/internal/srm"
	"streamorca/internal/vclock"
)

// Config assembles a SAM daemon.
type Config struct {
	Clock    vclock.Clock
	Cluster  *cluster.Cluster
	SRM      *srm.SRM
	Registry *opapi.Registry
	QueueCap int
	Logf     func(format string, args ...any)
	// Ckpt is the operator-state checkpoint store. nil disables
	// checkpointing: restarted PEs come back empty (the paper's §5.2
	// loss semantics). With a store, RestartPE restores every stateful
	// operator from the PE's latest snapshot.
	Ckpt ckpt.Store
	// CkptInterval is the per-PE automatic checkpoint period; 0 means
	// snapshots are taken only on demand (CheckpointPE).
	CkptInterval time.Duration
	// Retry bounds and paces RestartPE / CheckpointPE retries. The zero
	// value means a single attempt (no hidden sleeps under virtual-clock
	// tests); DefaultRetryPolicy() is the opt-in retrying policy.
	Retry RetryPolicy
}

// RetryPolicy governs how SAM retries failed actuations.
type RetryPolicy struct {
	// MaxAttempts caps total attempts, initial try included; <= 0 means 1.
	MaxAttempts int
	// BaseBackoff is the pause after the first failure; it doubles per
	// subsequent failure up to MaxBackoff. Zero values default to
	// 5ms / 250ms when MaxAttempts > 1.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the deterministic jitter source (each backoff is
	// stretched by up to 50%). A fixed seed reproduces retry timing
	// exactly, which the chaos harness depends on.
	JitterSeed int64
}

// DefaultRetryPolicy is the recommended production-shaped policy: three
// attempts with 5ms-based exponential backoff capped at 250ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

// AttemptRecord journals one actuation attempt.
type AttemptRecord struct {
	// Seq orders records across the journal.
	Seq int
	// Action is "restart" or "checkpoint".
	Action string
	PE     ids.PEID
	// Attempt numbers the try within its actuation, starting at 1.
	Attempt int
	// Err is empty on success.
	Err string
	At  time.Time
	// Backoff is the pause slept before the next attempt; zero on the
	// final attempt of an actuation.
	Backoff time.Duration
}

// permanentError marks failures retrying cannot fix (unknown PE, wrong
// state, structural config errors).
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

func permanent(err error) error { return permanentError{err: err} }

func isPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// SubmitOptions parameterise one job submission.
type SubmitOptions struct {
	// Params are submission-time values substituted into operator
	// parameters: an operator parameter value "{{rate}}" becomes the
	// submission value of key "rate".
	Params map[string]string
	// Owner names the orchestrator submitting the job; empty for external
	// submissions. Failure and job events route to the owner's listener.
	Owner string
}

// PEFailure is the notification SAM pushes to the owning orchestrator
// when a PE crashes.
type PEFailure struct {
	PE        ids.PEID
	Job       ids.JobID
	App       string
	Host      string
	Reason    string
	At        time.Time
	Operators []string
}

// JobInfo is a point-in-time description of a job.
type JobInfo struct {
	ID          ids.JobID
	App         string
	Owner       string
	SubmittedAt time.Time
	PEs         []PERuntimeInfo
}

// PERuntimeInfo describes one PE of a job.
type PERuntimeInfo struct {
	ID        ids.PEID
	Index     int
	Host      string
	State     string
	Operators []string
	Restarts  int
	// Unplaceable is set when a restart exhausted its retry budget; the
	// next explicit RestartPE gets a single attempt and clears it on
	// success.
	Unplaceable bool
}

// Listener receives job lifecycle callbacks for one orchestrator. All
// callbacks fire outside SAM locks; any may be nil.
type Listener struct {
	PEFailed     func(PEFailure)
	JobSubmitted func(JobInfo)
	JobCancelled func(JobInfo)
}

// SAM is the application manager daemon.
type SAM struct {
	cfg Config

	mu        sync.Mutex
	nextJob   int64
	nextPE    int64
	jobs      map[ids.JobID]*job
	reserved  map[string]ids.JobID // exclusive host reservations
	listeners map[string]Listener
	links     map[string]*xlink
	nextLink  int64

	// retryMu guards the attempt journal and jitter source; separate from
	// mu because attempts are recorded while actuations run unlocked.
	retryMu    sync.Mutex
	retryRng   *rand.Rand
	attempts   []AttemptRecord
	attemptSeq int
}

type job struct {
	id          ids.JobID
	app         *adl.Application
	owner       string
	submittedAt time.Time
	pes         map[int]*jpe
	byID        map[ids.PEID]*jpe
	reservedHst []string
	cancelling  bool
}

type jpe struct {
	index       int
	id          ids.PEID
	host        string
	container   *pe.PE
	state       string // running | stopping | stopped | crashed
	restarts    int
	attempts    int // cumulative restart attempts, successes included
	unplaceable bool
}

// New builds a SAM daemon wired to the cluster and SRM; it subscribes to
// SRM's PE exit notifications (the paper's SRM→SAM failure path).
func New(cfg Config) *SAM {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.Registry == nil {
		cfg.Registry = opapi.Default
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &SAM{
		cfg:       cfg,
		jobs:      make(map[ids.JobID]*job),
		reserved:  make(map[string]ids.JobID),
		listeners: make(map[string]Listener),
		links:     make(map[string]*xlink),
		retryRng:  rand.New(rand.NewSource(cfg.Retry.JitterSeed)),
	}
	if cfg.SRM != nil {
		cfg.SRM.OnPEExit(s.handlePEExit)
	}
	return s
}

// AddListener registers an orchestrator's callback set under its name.
func (s *SAM) AddListener(name string, l Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners[name] = l
}

// RemoveListener drops an orchestrator's callbacks.
func (s *SAM) RemoveListener(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, name)
}

// SubmitJob instantiates an application: clones and parameterises the
// ADL, places PEs onto hosts, starts the containers, wires intra-job
// cross-PE connections, and connects matching import/export streams with
// already-running jobs.
func (s *SAM) SubmitJob(app *adl.Application, opts SubmitOptions) (ids.JobID, error) {
	prepared := app.Clone()
	substituteParams(prepared, opts.Params)
	if err := prepared.Validate(); err != nil {
		return ids.InvalidJob, fmt.Errorf("sam: submit %s: %w", app.Name, err)
	}

	s.mu.Lock()
	s.nextJob++
	jobID := ids.JobID(s.nextJob)
	assign, reserve, err := place(prepared, s.cfg.Cluster.Hosts(), s.reservedByOther(jobID), s.occupiedByOther(jobID))
	if err != nil {
		s.nextJob--
		s.mu.Unlock()
		return ids.InvalidJob, fmt.Errorf("sam: place %s: %w", app.Name, err)
	}
	j := &job{
		id: jobID, app: prepared, owner: opts.Owner,
		submittedAt: s.cfg.Clock.Now(),
		pes:         make(map[int]*jpe, len(prepared.PEs)),
		byID:        make(map[ids.PEID]*jpe, len(prepared.PEs)),
		reservedHst: reserve,
	}
	for _, hostName := range reserve {
		s.reserved[hostName] = jobID
	}
	var toStart []*jpe
	for _, part := range prepared.PEs {
		s.nextPE++
		rp := &jpe{index: part.Index, id: ids.PEID(s.nextPE), host: assign[part.Index], state: "running"}
		j.pes[part.Index] = rp
		j.byID[rp.id] = rp
		toStart = append(toStart, rp)
	}
	s.jobs[jobID] = j
	s.mu.Unlock()

	for _, rp := range toStart {
		cfg, err := s.peConfig(j, rp)
		if err == nil && s.cfg.Ckpt != nil {
			// A fresh submission must never adopt old state: drop any
			// stale snapshot under this key (possible when a persistent
			// store outlives the instance whose sequential ids minted it).
			if derr := s.cfg.Ckpt.Delete(cfg.Ckpt.Key); derr != nil {
				s.cfg.Logf("sam: drop stale checkpoint %s: %v", cfg.Ckpt.Key, derr)
			}
		}
		if err == nil {
			rp.container, err = s.cfg.Cluster.StartPE(rp.host, cfg)
		}
		if err != nil {
			s.rollbackSubmit(jobID)
			return ids.InvalidJob, fmt.Errorf("sam: start PE %d of %s: %w", rp.index, app.Name, err)
		}
	}

	s.mu.Lock()
	var estFail error
	for _, l := range s.staticLinks(j) {
		s.links[l.id] = l
		if err := s.establishLocked(l); err != nil && estFail == nil {
			estFail = err
		}
	}
	for _, l := range s.matchImportsLocked(j) {
		s.links[l.id] = l
		if err := s.establishLocked(l); err != nil && estFail == nil {
			estFail = err
		}
	}
	listener := s.listeners[j.owner]
	info := s.jobInfoLocked(j)
	s.mu.Unlock()
	if estFail != nil {
		_ = s.CancelJob(jobID) //orcalint:ignore actuationcheck best-effort rollback of a submission that failed to wire; the wiring error is what the caller sees
		return ids.InvalidJob, fmt.Errorf("sam: wire %s: %w", app.Name, estFail)
	}
	if listener.JobSubmitted != nil {
		listener.JobSubmitted(info)
	}
	s.cfg.Logf("sam: submitted %s as %s", app.Name, jobID)
	return jobID, nil
}

// rollbackSubmit tears down a half-started job.
func (s *SAM) rollbackSubmit(jobID ids.JobID) {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.cancelling = true
	var containers []*pe.PE
	for _, rp := range j.pes {
		rp.state = "stopping"
		if rp.container != nil {
			containers = append(containers, rp.container)
		}
	}
	delete(s.jobs, jobID)
	for _, h := range j.reservedHst {
		delete(s.reserved, h)
	}
	s.mu.Unlock()
	for _, c := range containers {
		c.Stop()
	}
}

// CancelJob stops a job's PEs, removes its stream links, and releases its
// exclusive host reservations.
func (s *SAM) CancelJob(id ids.JobID) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("sam: no job %s", id)
	}
	if j.cancelling {
		s.mu.Unlock()
		return fmt.Errorf("sam: job %s already cancelling", id)
	}
	j.cancelling = true
	var containers []*pe.PE
	for _, rp := range j.pes {
		if rp.state == "running" {
			rp.state = "stopping"
		}
		if rp.container != nil {
			containers = append(containers, rp.container)
		}
	}
	// Detach cross-job links feeding this job from their exporters, and
	// drop every link touching the job.
	type detach struct {
		c      *pe.PE
		op     string
		port   int
		linkID string
	}
	var detaches []detach
	for lid, l := range s.links {
		if l.fromJob != id && l.toJob != id {
			continue
		}
		if l.toJob == id && l.fromJob != id {
			if src, ok := s.jobs[l.fromJob]; ok {
				if rp, ok := src.pes[l.fromIdx]; ok && rp.container != nil {
					detaches = append(detaches, detach{rp.container, l.fromOp, l.fromPort, lid})
				}
			}
		}
		if l.link != nil {
			// Dropping the link severs the connection: pending and
			// in-flight tuples are lost, so cancelled flows stop
			// promptly (Discard never blocks).
			l.link.Discard()
			l.link = nil
		}
		delete(s.links, lid)
	}
	info := s.jobInfoLocked(j)
	listener := s.listeners[j.owner]
	delete(s.jobs, id)
	for _, h := range j.reservedHst {
		delete(s.reserved, h)
	}
	var ckptKeys []string
	if s.cfg.Ckpt != nil {
		for _, rp := range j.pes {
			ckptKeys = append(ckptKeys, ckptKey(j.id, rp.id))
		}
	}
	s.mu.Unlock()

	for _, d := range detaches {
		_ = d.c.RemoveOutlet(d.op, d.port, d.linkID)
	}
	for _, c := range containers {
		c.Stop()
	}
	// A cancelled job never restarts, so its snapshots are garbage.
	for _, k := range ckptKeys {
		if err := s.cfg.Ckpt.Delete(k); err != nil {
			s.cfg.Logf("sam: drop checkpoint %s: %v", k, err)
		}
	}
	if s.cfg.SRM != nil {
		s.cfg.SRM.DropJob(id)
	}
	if listener.JobCancelled != nil {
		listener.JobCancelled(info)
	}
	s.cfg.Logf("sam: cancelled %s (%s)", id, info.App)
	return nil
}

// RestartPE restarts a PE (crashed, stopped, or running) with a fresh
// container on the same host when possible, re-wiring every stream link
// that touches it. The PE keeps its id, as in System S. When SAM has a
// checkpoint store, the fresh container restores every stateful
// operator from the PE's latest snapshot before processing resumes, so
// a restart no longer implies empty windows and zeroed counters.
//
// Transient failures (host gone mid-placement, store hiccups) are
// retried under Config.Retry with exponential backoff and deterministic
// jitter, each attempt journalled. Exhausting the budget marks the PE
// unplaceable and pushes a degradation notification — a PEFailure with
// a "restart abandoned" reason — to the owning orchestrator, which can
// react (revive a host, reset a store) and try again: an unplaceable PE
// gets single attempts until one succeeds and clears the mark.
func (s *SAM) RestartPE(id ids.PEID) error {
	pol := s.cfg.Retry
	max := pol.MaxAttempts
	if max <= 0 {
		max = 1
	}
	s.mu.Lock()
	if _, rp := s.findPELocked(id); rp != nil && rp.unplaceable {
		max = 1 // already escalated: no repeated backoff storms
	}
	s.mu.Unlock()

	var err error
	attempts := 0
	for attempt := 1; attempt <= max; attempt++ {
		attempts = attempt
		err = s.restartPEOnce(id)
		final := err == nil || isPermanent(err) || attempt == max
		var backoff time.Duration
		if !final {
			backoff = s.retryBackoff(pol, attempt)
		}
		s.recordAttempt("restart", id, attempt, err, backoff)
		if final {
			break
		}
		s.cfg.Logf("sam: restart %s attempt %d/%d failed (%v); retrying in %s", id, attempt, max, err, backoff)
		s.cfg.Clock.Sleep(backoff)
	}
	s.settleRestart(id, attempts, err)
	return err
}

// settleRestart applies the outcome of a restart actuation: success
// clears the unplaceable mark and updates the attempt gauge; exhausting
// the retry budget on a transient failure marks the PE unplaceable and
// notifies the owning orchestrator once.
func (s *SAM) settleRestart(id ids.PEID, attempts int, err error) {
	s.mu.Lock()
	j, rp := s.findPELocked(id)
	if rp == nil {
		s.mu.Unlock()
		return
	}
	rp.attempts += attempts
	if err == nil {
		rp.unplaceable = false
		if rp.container != nil {
			rp.container.PEMetrics().Counter(metrics.PERestartAttempts).Set(int64(rp.attempts))
		}
		s.mu.Unlock()
		return
	}
	if isPermanent(err) || rp.unplaceable {
		s.mu.Unlock()
		return
	}
	rp.unplaceable = true
	listener := s.listeners[j.owner]
	failure := PEFailure{
		PE: id, Job: j.id, App: j.app.Name, Host: rp.host,
		Reason:    fmt.Sprintf("restart abandoned after %d attempts: %v", attempts, err),
		At:        s.cfg.Clock.Now(),
		Operators: append([]string(nil), j.app.OperatorsInPE(rp.index)...),
	}
	s.mu.Unlock()
	s.cfg.Logf("sam: PE %s unplaceable: %s", id, failure.Reason)
	if listener.PEFailed != nil {
		listener.PEFailed(failure)
	}
}

// retryBackoff computes the pause before the next attempt: exponential
// from BaseBackoff, capped at MaxBackoff, stretched by up to 50% of
// deterministic seeded jitter.
func (s *SAM) retryBackoff(pol RetryPolicy, attempt int) time.Duration {
	base := pol.BaseBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	cap := pol.MaxBackoff
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	s.retryMu.Lock()
	jitter := time.Duration(s.retryRng.Int63n(int64(d)/2 + 1))
	s.retryMu.Unlock()
	return d + jitter
}

// recordAttempt appends one actuation attempt to the journal.
func (s *SAM) recordAttempt(action string, id ids.PEID, attempt int, err error, backoff time.Duration) {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	s.attemptSeq++
	rec := AttemptRecord{
		Seq: s.attemptSeq, Action: action, PE: id,
		Attempt: attempt, At: s.cfg.Clock.Now(), Backoff: backoff,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.attempts = append(s.attempts, rec)
}

// AttemptJournal returns a copy of every journalled actuation attempt,
// in order. The chaos harness derives restart attempted/succeeded
// counts from it.
func (s *SAM) AttemptJournal() []AttemptRecord {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	return append([]AttemptRecord(nil), s.attempts...)
}

// restartPEOnce is one restart attempt.
func (s *SAM) restartPEOnce(id ids.PEID) error {
	s.mu.Lock()
	j, rp := s.findPELocked(id)
	if rp == nil {
		s.mu.Unlock()
		return permanent(fmt.Errorf("sam: no PE %s", id))
	}
	running := rp.state == "running" && rp.container != nil
	container := rp.container
	if running {
		rp.state = "stopping"
	}
	s.mu.Unlock()
	if running {
		container.Stop()
	}

	s.mu.Lock()
	if !s.cfg.Cluster.HostUp(rp.host) {
		// Re-place onto a surviving host of the same pool.
		assign, _, err := place(j.app, s.cfg.Cluster.Hosts(), s.reservedByOther(j.id), s.occupiedByOther(j.id))
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("sam: re-place PE %s: %w", id, err)
		}
		rp.host = assign[rp.index]
	}
	cfg, err := s.peConfig(j, rp)
	s.mu.Unlock()
	if err != nil {
		return permanent(err)
	}
	cfg.Ckpt.Restore = cfg.Ckpt.Store != nil

	newC, err := s.cfg.Cluster.StartPE(rp.host, cfg)
	if err != nil {
		return fmt.Errorf("sam: restart PE %s: %w", id, err)
	}

	s.mu.Lock()
	rp.container = newC
	rp.state = "running"
	rp.restarts++
	newC.PEMetrics().Counter(metrics.PERestarts).Set(int64(rp.restarts))
	var rewire []*xlink
	for _, l := range s.links {
		if (l.fromJob == j.id && l.fromIdx == rp.index) || (l.toJob == j.id && l.toIdx == rp.index) {
			rewire = append(rewire, l)
		}
	}
	for _, l := range rewire {
		if err := s.establishLocked(l); err != nil {
			s.cfg.Logf("sam: rewire %s: %v", l.id, err)
		}
	}
	s.mu.Unlock()
	s.cfg.Logf("sam: restarted %s on %s", id, rp.host)
	return nil
}

// CheckpointPE captures an on-demand state snapshot of a running PE
// (the orchestrator actuation backing checkpoint-before-risky-change
// policies; periodic snapshots ride Config.CkptInterval instead).
// Transient store failures are retried under Config.Retry with the same
// journalled backoff as RestartPE.
func (s *SAM) CheckpointPE(id ids.PEID) error {
	pol := s.cfg.Retry
	max := pol.MaxAttempts
	if max <= 0 {
		max = 1
	}
	var err error
	for attempt := 1; attempt <= max; attempt++ {
		err = s.checkpointPEOnce(id)
		final := err == nil || isPermanent(err) || attempt == max
		var backoff time.Duration
		if !final {
			backoff = s.retryBackoff(pol, attempt)
		}
		s.recordAttempt("checkpoint", id, attempt, err, backoff)
		if final {
			break
		}
		s.cfg.Logf("sam: checkpoint %s attempt %d/%d failed (%v); retrying in %s", id, attempt, max, err, backoff)
		s.cfg.Clock.Sleep(backoff)
	}
	return err
}

// checkpointPEOnce is one checkpoint attempt.
func (s *SAM) checkpointPEOnce(id ids.PEID) error {
	s.mu.Lock()
	_, rp := s.findPELocked(id)
	if rp == nil {
		s.mu.Unlock()
		return permanent(fmt.Errorf("sam: no PE %s", id))
	}
	if rp.state != "running" || rp.container == nil {
		s.mu.Unlock()
		return permanent(fmt.Errorf("sam: PE %s is not running", id))
	}
	c := rp.container
	s.mu.Unlock()
	n, err := c.Checkpoint()
	if err != nil {
		return fmt.Errorf("sam: checkpoint PE %s: %w", id, err)
	}
	s.cfg.Logf("sam: checkpointed %s (%d bytes)", id, n)
	return nil
}

// StopPE cleanly stops one PE without restarting it.
func (s *SAM) StopPE(id ids.PEID) error {
	s.mu.Lock()
	_, rp := s.findPELocked(id)
	if rp == nil {
		s.mu.Unlock()
		return fmt.Errorf("sam: no PE %s", id)
	}
	if rp.state != "running" || rp.container == nil {
		s.mu.Unlock()
		return fmt.Errorf("sam: PE %s is not running", id)
	}
	rp.state = "stopping"
	c := rp.container
	s.mu.Unlock()
	c.Stop()
	return nil
}

// KillPE injects a crash failure (fault injection / tests).
func (s *SAM) KillPE(id ids.PEID, reason string) error {
	return s.cfg.Cluster.KillPE(id, reason)
}

// ControlOperator delivers a control command to an operator of a running
// job (the orchestrator actuation that adjusts operator behaviour without
// redeployment, §3).
func (s *SAM) ControlOperator(jobID ids.JobID, opName, cmd string, args map[string]string) error {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("sam: no job %s", jobID)
	}
	idx := j.app.PEOfOperator(opName)
	if idx < 0 {
		s.mu.Unlock()
		return fmt.Errorf("sam: job %s has no operator %q", jobID, opName)
	}
	rp := j.pes[idx]
	if rp == nil || rp.container == nil || rp.state != "running" {
		s.mu.Unlock()
		return fmt.Errorf("sam: PE hosting %q is not running", opName)
	}
	c := rp.container
	s.mu.Unlock()
	return c.Control(opName, cmd, args)
}

// Job returns a snapshot of one job.
func (s *SAM) Job(id ids.JobID) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return s.jobInfoLocked(j), true
}

// Jobs returns snapshots of all running jobs, ordered by id.
func (s *SAM) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.jobInfoLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// JobADL returns the (parameterised) ADL a job runs, for graph building.
func (s *SAM) JobADL(id ids.JobID) (*adl.Application, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.app, true
}

// PEPlacement returns partition-index → PE id and host maps for a job.
func (s *SAM) PEPlacement(id ids.JobID) (map[int]ids.PEID, map[int]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, false
	}
	peIDs := make(map[int]ids.PEID, len(j.pes))
	hosts := make(map[int]string, len(j.pes))
	for idx, rp := range j.pes {
		peIDs[idx] = rp.id
		hosts[idx] = rp.host
	}
	return peIDs, hosts, true
}

// handlePEExit is SAM's subscription to SRM's failure notifications.
func (s *SAM) handlePEExit(e srm.PEExit) {
	s.mu.Lock()
	j, rp := s.findPELocked(e.PE)
	if rp == nil || j.cancelling {
		s.mu.Unlock()
		return
	}
	if rp.state == "stopping" {
		rp.state = "stopped"
		s.mu.Unlock()
		return
	}
	if !e.Crashed {
		rp.state = "stopped"
		s.mu.Unlock()
		return
	}
	rp.state = "crashed"
	autoRestart := false
	for _, part := range j.app.PEs {
		if part.Index == rp.index {
			autoRestart = part.Restart
		}
	}
	listener := s.listeners[j.owner]
	failure := PEFailure{
		PE: e.PE, Job: j.id, App: j.app.Name, Host: e.Host,
		Reason: e.Reason, At: e.At,
		Operators: append([]string(nil), j.app.OperatorsInPE(rp.index)...),
	}
	s.mu.Unlock()

	if autoRestart {
		if err := s.RestartPE(e.PE); err != nil {
			s.cfg.Logf("sam: auto-restart %s: %v", e.PE, err)
		}
	}
	if listener.PEFailed != nil {
		listener.PEFailed(failure)
	}
}

// peConfig assembles the container configuration for one partition.
func (s *SAM) peConfig(j *job, rp *jpe) (pe.Config, error) {
	var part *adl.PE
	for i := range j.app.PEs {
		if j.app.PEs[i].Index == rp.index {
			part = &j.app.PEs[i]
		}
	}
	if part == nil {
		return pe.Config{}, fmt.Errorf("sam: job %s has no partition %d", j.id, rp.index)
	}
	inPart := make(map[string]bool, len(part.Operators))
	cfg := pe.Config{
		ID: rp.id, Job: j.id, App: j.app.Name,
		Clock: s.cfg.Clock, Registry: s.cfg.Registry,
		QueueCap: s.cfg.QueueCap, Logf: s.cfg.Logf,
	}
	for _, name := range part.Operators {
		inPart[name] = true
		src := j.app.OperatorByName(name)
		spec := pe.OpSpec{Name: src.Name, Kind: src.Kind, Params: opapi.Params(src.Params)}
		for _, p := range src.Inputs {
			sc, err := p.SchemaOf()
			if err != nil {
				return pe.Config{}, err
			}
			spec.Inputs = append(spec.Inputs, sc)
		}
		for _, p := range src.Outputs {
			sc, err := p.SchemaOf()
			if err != nil {
				return pe.Config{}, err
			}
			spec.Outputs = append(spec.Outputs, sc)
		}
		cfg.Ops = append(cfg.Ops, spec)
	}
	for _, c := range j.app.Connects {
		if inPart[c.FromOp] && inPart[c.ToOp] {
			cfg.Wires = append(cfg.Wires, pe.Wire{FromOp: c.FromOp, FromPort: c.FromPort, ToOp: c.ToOp, ToPort: c.ToPort})
		}
	}
	if s.cfg.Ckpt != nil {
		cfg.Ckpt = pe.CkptConfig{
			Store:    s.cfg.Ckpt,
			Key:      ckptKey(j.id, rp.id),
			Interval: s.cfg.CkptInterval,
			// Restore stays off for fresh submissions; RestartPE arms it.
		}
	}
	return cfg, nil
}

// ckptKey names a PE's snapshot. Both ids survive restarts and are
// unique for the lifetime of a platform instance, so a restarted PE
// finds exactly its own state.
func ckptKey(job ids.JobID, pe ids.PEID) string {
	return fmt.Sprintf("%s/%s", job, pe)
}

func (s *SAM) findPELocked(id ids.PEID) (*job, *jpe) {
	for _, j := range s.jobs {
		if rp, ok := j.byID[id]; ok {
			return j, rp
		}
	}
	return nil, nil
}

func (s *SAM) jobInfoLocked(j *job) JobInfo {
	info := JobInfo{ID: j.id, App: j.app.Name, Owner: j.owner, SubmittedAt: j.submittedAt}
	for _, rp := range j.pes {
		info.PEs = append(info.PEs, PERuntimeInfo{
			ID: rp.id, Index: rp.index, Host: rp.host, State: rp.state,
			Operators:   append([]string(nil), j.app.OperatorsInPE(rp.index)...),
			Restarts:    rp.restarts,
			Unplaceable: rp.unplaceable,
		})
	}
	sort.Slice(info.PEs, func(a, b int) bool { return info.PEs[a].Index < info.PEs[b].Index })
	return info
}

// reservedByOther lists hosts exclusively reserved by jobs other than self.
func (s *SAM) reservedByOther(self ids.JobID) map[string]bool {
	out := make(map[string]bool, len(s.reserved))
	for h, owner := range s.reserved {
		if owner != self {
			out[h] = true
		}
	}
	return out
}

// occupiedByOther lists hosts where jobs other than self have PEs.
func (s *SAM) occupiedByOther(self ids.JobID) map[string]bool {
	out := make(map[string]bool)
	for _, j := range s.jobs {
		if j.id == self {
			continue
		}
		for _, rp := range j.pes {
			out[rp.host] = true
		}
	}
	return out
}

// substituteParams applies submission-time values to "{{key}}" references
// in operator parameter values.
func substituteParams(app *adl.Application, params map[string]string) {
	if len(params) == 0 {
		return
	}
	for i := range app.Operators {
		for k, v := range app.Operators[i].Params {
			if !strings.Contains(v, "{{") {
				continue
			}
			for pk, pv := range params {
				v = strings.ReplaceAll(v, "{{"+pk+"}}", pv)
			}
			app.Operators[i].Params[k] = v
		}
	}
}
