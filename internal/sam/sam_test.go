package sam_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
)

var intS = tuple.MustSchema(tuple.Attribute{Name: "seq", Type: tuple.Int})

// pipelineApp builds Beacon -> Filter -> CollectSink as three PEs.
func pipelineApp(t *testing.T, name, collector string, count int64) *adl.Application {
	t.Helper()
	b := compiler.NewApp(name)
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).
		Param("count", itoa(count)).Param("period", "200us")
	filt := b.AddOperator("filt", ops.KindFilter).In(intS).Out(intS).
		Param("attr", "seq").Param("op", "ge").Param("value", "0")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).
		Param("collectorId", collector)
	b.Connect(src, 0, filt, 0)
	b.Connect(filt, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func newInstance(t *testing.T, hostNames ...string) *platform.Instance {
	t.Helper()
	specs := make([]platform.HostSpec, len(hostNames))
	for i, n := range hostNames {
		specs[i] = platform.HostSpec{Name: n}
	}
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           specs,
		MetricsInterval: time.Hour, // tests flush explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitJobRunsPipelineAcrossPEs(t *testing.T) {
	inst := newInstance(t, "h1", "h2")
	ops.ResetCollector("p1")
	app := pipelineApp(t, "Pipe", "p1", 20)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "20 tuples at sink", func() bool { return ops.Collector("p1").Len() == 20 })
	info, ok := inst.SAM.Job(jobID)
	if !ok || info.App != "Pipe" || len(info.PEs) != 3 {
		t.Fatalf("JobInfo = %+v", info)
	}
	hosts := map[string]bool{}
	for _, pe := range info.PEs {
		hosts[pe.Host] = true
		if pe.State != "running" {
			t.Fatalf("PE %v state %q", pe.ID, pe.State)
		}
	}
	if len(hosts) != 2 {
		t.Fatalf("PEs not spread over hosts: %+v", info.PEs)
	}
}

func TestSubmitRejectsInvalidAndUnplaceable(t *testing.T) {
	inst := newInstance(t, "h1")
	bad := &adl.Application{Name: ""}
	if _, err := inst.SAM.SubmitJob(bad, sam.SubmitOptions{}); err == nil {
		t.Fatal("invalid ADL submitted")
	}
	app := pipelineApp(t, "Pool", "none", 1)
	app.HostPools = []adl.HostPool{{Name: "ghostpool", Hosts: []string{"nosuchhost"}}}
	for i := range app.PEs {
		app.PEs[i].Pool = "ghostpool"
	}
	if _, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{}); err == nil {
		t.Fatal("unplaceable app submitted")
	}
}

func TestCancelJobStopsEverything(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("c2")
	app := pipelineApp(t, "Cancel", "c2", 0) // unbounded source
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "some tuples", func() bool { return ops.Collector("c2").Len() > 3 })
	inst.FlushMetrics()
	if len(inst.SRM.Query([]ids.JobID{jobID})) == 0 {
		t.Fatal("no SRM samples before cancel")
	}
	if err := inst.SAM.CancelJob(jobID); err != nil {
		t.Fatal(err)
	}
	if _, ok := inst.SAM.Job(jobID); ok {
		t.Fatal("job still listed after cancel")
	}
	if got := inst.SRM.Query([]ids.JobID{jobID}); len(got) != 0 {
		t.Fatalf("SRM kept %d samples after cancel", len(got))
	}
	n := ops.Collector("c2").Len()
	time.Sleep(20 * time.Millisecond)
	if ops.Collector("c2").Len() != n {
		t.Fatal("tuples still flowing after cancel")
	}
	if err := inst.SAM.CancelJob(jobID); err == nil {
		t.Fatal("double cancel succeeded")
	}
}

func TestPEFailureNotifiesOwnerAndRestartResumes(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("c3")
	var mu sync.Mutex
	var failures []sam.PEFailure
	inst.SAM.AddListener("orca1", sam.Listener{
		PEFailed: func(f sam.PEFailure) {
			mu.Lock()
			failures = append(failures, f)
			mu.Unlock()
		},
	})
	app := pipelineApp(t, "Fail", "c3", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{Owner: "orca1"})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "flow", func() bool { return ops.Collector("c3").Len() > 3 })

	info, _ := inst.SAM.Job(jobID)
	var sinkPE ids.PEID
	for _, p := range info.PEs {
		if p.Operators[0] == "sink" {
			sinkPE = p.ID
		}
	}
	if err := inst.SAM.KillPE(sinkPE, "injected"); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "failure notification", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(failures) == 1
	})
	mu.Lock()
	f := failures[0]
	mu.Unlock()
	if f.PE != sinkPE || f.Job != jobID || f.App != "Fail" || f.Reason != "injected" {
		t.Fatalf("failure = %+v", f)
	}
	if len(f.Operators) != 1 || f.Operators[0] != "sink" {
		t.Fatalf("failure operators = %v", f.Operators)
	}

	n := ops.Collector("c3").Len()
	if err := inst.SAM.RestartPE(sinkPE); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "flow after restart", func() bool { return ops.Collector("c3").Len() > n })
	info, _ = inst.SAM.Job(jobID)
	for _, p := range info.PEs {
		if p.ID == sinkPE && (p.Restarts != 1 || p.State != "running") {
			t.Fatalf("restarted PE info = %+v", p)
		}
	}
}

func TestAutoRestartFlag(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("c4")
	app := pipelineApp(t, "Auto", "c4", 0)
	for i := range app.PEs {
		app.PEs[i].Restart = true
	}
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "flow", func() bool { return ops.Collector("c4").Len() > 3 })
	info, _ := inst.SAM.Job(jobID)
	var srcPE ids.PEID
	for _, p := range info.PEs {
		if p.Operators[0] == "src" {
			srcPE = p.ID
		}
	}
	if err := inst.SAM.KillPE(srcPE, "boom"); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "auto restart", func() bool {
		info, _ := inst.SAM.Job(jobID)
		for _, p := range info.PEs {
			if p.ID == srcPE {
				return p.Restarts == 1 && p.State == "running"
			}
		}
		return false
	})
	n := ops.Collector("c4").Len()
	waitCond(t, "flow after auto restart", func() bool { return ops.Collector("c4").Len() > n })
}

func TestStopPE(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("c5")
	app := pipelineApp(t, "Stop", "c5", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "flow", func() bool { return ops.Collector("c5").Len() > 0 })
	info, _ := inst.SAM.Job(jobID)
	var sinkPE ids.PEID
	for _, p := range info.PEs {
		if p.Operators[0] == "sink" {
			sinkPE = p.ID
		}
	}
	if err := inst.SAM.StopPE(sinkPE); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "stopped state", func() bool {
		info, _ := inst.SAM.Job(jobID)
		for _, p := range info.PEs {
			if p.ID == sinkPE {
				return p.State == "stopped"
			}
		}
		return false
	})
	if err := inst.SAM.StopPE(sinkPE); err == nil {
		t.Fatal("stopping a stopped PE succeeded")
	}
}

func TestImportExportAcrossJobs(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("imp")

	bx := compiler.NewApp("Exporter")
	src := bx.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", "0").Param("period", "200us")
	bx.Export(src, 0, "numbers", map[string]string{"kind": "seq"})
	exApp, err := bx.Build(compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}

	bi := compiler.NewApp("Importer")
	sink := bi.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", "imp")
	bi.Import(sink, 0, "", map[string]string{"kind": "seq"})
	imApp, err := bi.Build(compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}

	exJob, err := inst.SAM.SubmitJob(exApp, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = inst.SAM.SubmitJob(imApp, sam.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "imported tuples", func() bool { return ops.Collector("imp").Len() > 3 })

	// Cancelling the exporter must stop the flow without killing the importer.
	if err := inst.SAM.CancelJob(exJob); err != nil {
		t.Fatal(err)
	}
	n := ops.Collector("imp").Len()
	time.Sleep(20 * time.Millisecond)
	if ops.Collector("imp").Len() != n {
		t.Fatal("import flow continued after exporter cancel")
	}

	// Resubmitting the exporter reconnects automatically (§2.1).
	if _, err := inst.SAM.SubmitJob(exApp, sam.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "reconnected flow", func() bool { return ops.Collector("imp").Len() > n })
}

func TestExclusivePoolsSeparateReplicas(t *testing.T) {
	inst := newInstance(t, "h1", "h2", "h3")
	mk := func(name, coll string) *adl.Application {
		app := pipelineApp(t, name, coll, 0)
		app.MakeExclusive()
		for i := range app.HostPools {
			app.HostPools[i].Size = 1
		}
		return app
	}
	usedHosts := map[string]bool{}
	for i, name := range []string{"R0", "R1", "R2"} {
		ops.ResetCollector("ex" + name)
		jobID, err := inst.SAM.SubmitJob(mk(name, "ex"+name), sam.SubmitOptions{})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		info, _ := inst.SAM.Job(jobID)
		for _, p := range info.PEs {
			usedHosts[p.Host] = true
		}
	}
	if len(usedHosts) != 3 {
		t.Fatalf("replicas share hosts: %v", usedHosts)
	}
	// A fourth exclusive replica must fail: no hosts left.
	if _, err := inst.SAM.SubmitJob(mk("R3", "exR3"), sam.SubmitOptions{}); err == nil {
		t.Fatal("fourth exclusive replica placed")
	}
}

func TestSubmissionParamsReachOperators(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("par")
	b := compiler.NewApp("Par")
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", "{{n}}")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", "par")
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{Params: map[string]string{"n": "7"}}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "final", func() bool { return ops.Collector("par").Finals() == 1 })
	if got := ops.Collector("par").Len(); got != 7 {
		t.Fatalf("submission param ignored: %d tuples", got)
	}
}

func TestControlOperator(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("ctl")
	b := compiler.NewApp("Ctl")
	src := b.AddOperator("src", ops.KindBeacon).Out(intS).Param("count", "0").Param("period", "200us")
	filt := b.AddOperator("filt", ops.KindDynamicFilter).In(intS).Out(intS).
		Param("attr", "seq").Param("op", "ge").Param("value", "0")
	sink := b.AddOperator("sink", ops.KindCollectSink).In(intS).Param("collectorId", "ctl")
	b.Connect(src, 0, filt, 0)
	b.Connect(filt, 0, sink, 0)
	app, err := b.Build(compiler.Options{Fusion: compiler.FuseAll})
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "flow", func() bool { return ops.Collector("ctl").Len() > 0 })
	if err := inst.SAM.ControlOperator(jobID, "filt", "setPredicate",
		map[string]string{"attr": "seq", "op": "lt", "value": "0"}); err != nil {
		t.Fatal(err)
	}
	n := ops.Collector("ctl").Len()
	time.Sleep(20 * time.Millisecond)
	if got := ops.Collector("ctl").Len(); got > n+2 {
		t.Fatalf("control command did not throttle flow: %d -> %d", n, got)
	}
	if err := inst.SAM.ControlOperator(jobID, "ghost", "x", nil); err == nil {
		t.Fatal("control on unknown operator succeeded")
	}
	if err := inst.SAM.ControlOperator(999, "filt", "x", nil); err == nil {
		t.Fatal("control on unknown job succeeded")
	}
}

func TestJobListenerLifecycleEvents(t *testing.T) {
	inst := newInstance(t, "h1")
	var mu sync.Mutex
	var submitted, cancelled []string
	inst.SAM.AddListener("o", sam.Listener{
		JobSubmitted: func(j sam.JobInfo) {
			mu.Lock()
			submitted = append(submitted, j.App)
			mu.Unlock()
		},
		JobCancelled: func(j sam.JobInfo) {
			mu.Lock()
			cancelled = append(cancelled, j.App)
			mu.Unlock()
		},
	})
	ops.ResetCollector("lst")
	app := pipelineApp(t, "Listen", "lst", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{Owner: "o"})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.SAM.CancelJob(jobID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(submitted) != 1 || submitted[0] != "Listen" || len(cancelled) != 1 || cancelled[0] != "Listen" {
		t.Fatalf("submitted=%v cancelled=%v", submitted, cancelled)
	}
}

func TestJobsAndPlacementQueries(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("q")
	app := pipelineApp(t, "Query", "q", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := inst.SAM.Jobs()
	if len(jobs) != 1 || jobs[0].ID != jobID {
		t.Fatalf("Jobs() = %+v", jobs)
	}
	peIDs, hosts, ok := inst.SAM.PEPlacement(jobID)
	if !ok || len(peIDs) != 3 || len(hosts) != 3 {
		t.Fatalf("PEPlacement: %v %v %v", peIDs, hosts, ok)
	}
	if _, ok := inst.SAM.JobADL(jobID); !ok {
		t.Fatal("JobADL missing")
	}
	if _, _, ok := inst.SAM.PEPlacement(999); ok {
		t.Fatal("placement for unknown job")
	}
	if strings.TrimSpace(jobs[0].App) == "" {
		t.Fatal("empty app name in JobInfo")
	}
}

func TestLinkCountTracksCancel(t *testing.T) {
	inst := newInstance(t, "h1")
	ops.ResetCollector("lc")
	app := pipelineApp(t, "Links", "lc", 0) // 3 PEs -> 2 static links
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.SAM.LinkCount(); got != 2 {
		t.Fatalf("LinkCount = %d", got)
	}
	if err := inst.SAM.CancelJob(jobID); err != nil {
		t.Fatal(err)
	}
	if got := inst.SAM.LinkCount(); got != 0 {
		t.Fatalf("LinkCount after cancel = %d", got)
	}
}

// TestCheckpointAgeMetricFlowsThroughSRM pins the health signal the
// checkpoint-aware failover policy ranks on: every PE publishes
// lastCheckpointAgeMs through the normal HC→SRM sample path — -1 until
// its state is first anchored, non-negative after CheckpointPE, and
// still non-negative after a restoring restart (the restored snapshot
// anchors the fresh container).
func TestCheckpointAgeMetricFlowsThroughSRM(t *testing.T) {
	store := ckpt.NewMemStore()
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           []platform.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
		Checkpoint:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	ops.ResetCollector("age")
	app := pipelineApp(t, "Age", "age", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "flow", func() bool { return ops.Collector("age").Len() > 3 })

	ages := func() map[ids.PEID]int64 {
		inst.FlushMetrics()
		out := make(map[ids.PEID]int64)
		for _, s := range inst.SRM.Query([]ids.JobID{jobID}) {
			if s.Scope == metrics.PEScope && s.Name == metrics.PECheckpointAgeMs {
				out[s.PE] = s.Value
			}
		}
		return out
	}

	info, _ := inst.SAM.Job(jobID)
	if len(info.PEs) != 3 {
		t.Fatalf("PEs = %+v", info.PEs)
	}
	for pe, age := range ages() {
		if age != -1 {
			t.Fatalf("PE %s age before any checkpoint = %d, want -1", pe, age)
		}
	}
	var srcPE ids.PEID
	for _, p := range info.PEs {
		if p.Operators[0] == "src" { // Beacon is stateful: its cursor checkpoints
			srcPE = p.ID
		}
	}
	if err := inst.SAM.CheckpointPE(srcPE); err != nil {
		t.Fatal(err)
	}
	got := ages()
	if got[srcPE] < 0 {
		t.Fatalf("checkpointed PE age = %d, want >= 0", got[srcPE])
	}
	for pe, age := range got {
		if pe != srcPE && age != -1 {
			t.Fatalf("unsnapshotted PE %s age = %d, want -1", pe, age)
		}
	}

	// A restoring restart re-anchors the fresh container.
	if err := inst.SAM.RestartPE(srcPE); err != nil {
		t.Fatal(err)
	}
	if got := ages()[srcPE]; got < 0 {
		t.Fatalf("restored PE age = %d, want >= 0", got)
	}
	c, ok := inst.Cluster.PEContainer(srcPE)
	if !ok {
		t.Fatal("restarted container missing")
	}
	if got := c.PEMetrics().Counter(metrics.PEStateRestores).Value(); got < 1 {
		t.Fatalf("nStateRestores = %d", got)
	}
}

func newRetryInstance(t *testing.T, retry sam.RetryPolicy, store ckpt.Store, hostNames ...string) *platform.Instance {
	t.Helper()
	specs := make([]platform.HostSpec, len(hostNames))
	for i, n := range hostNames {
		specs[i] = platform.HostSpec{Name: n}
	}
	inst, err := platform.NewInstance(platform.Options{
		Hosts:           specs,
		MetricsInterval: time.Hour,
		Checkpoint:      store,
		Retry:           retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

// restartJournal filters the attempt journal down to one PE's restarts.
func restartJournal(s *sam.SAM, id ids.PEID) []sam.AttemptRecord {
	var out []sam.AttemptRecord
	for _, rec := range s.AttemptJournal() {
		if rec.Action == "restart" && rec.PE == id {
			out = append(out, rec)
		}
	}
	return out
}

// TestRestartRetriesUntilHostReturns: a restart that keeps failing
// while the only host is down succeeds once the host comes back within
// the retry budget — the transient-outage case retries exist for.
func TestRestartRetriesUntilHostReturns(t *testing.T) {
	retry := sam.RetryPolicy{MaxAttempts: 40, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	inst := newRetryInstance(t, retry, nil, "h1")
	ops.ResetCollector("rr1")
	app := pipelineApp(t, "RetryHost", "rr1", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := inst.SAM.Job(jobID)
	target := info.PEs[0].ID
	if err := inst.Cluster.KillHost("h1"); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "PE crashed", func() bool {
		info, _ := inst.SAM.Job(jobID)
		return info.PEs[0].State == "crashed"
	})
	go func() {
		time.Sleep(15 * time.Millisecond)
		_ = inst.Cluster.ReviveHost("h1")
	}()
	if err := inst.SAM.RestartPE(target); err != nil {
		t.Fatalf("restart did not outlast the outage: %v", err)
	}
	recs := restartJournal(inst.SAM, target)
	if len(recs) < 2 {
		t.Fatalf("expected retries in the journal, got %+v", recs)
	}
	for i, rec := range recs {
		last := i == len(recs)-1
		if last != (rec.Err == "") {
			t.Fatalf("journal attempt %d: err %q", i, rec.Err)
		}
		if !last && rec.Backoff <= 0 {
			t.Fatalf("journal attempt %d has no backoff: %+v", i, rec)
		}
	}
	info, _ = inst.SAM.Job(jobID)
	if info.PEs[0].State != "running" || info.PEs[0].Unplaceable {
		t.Fatalf("PE after retried restart: %+v", info.PEs[0])
	}
}

// TestRestartExhaustionMarksUnplaceable: exhausting the retry budget
// marks the PE unplaceable, escalates exactly one degradation
// notification to the owner, throttles further restarts to single
// attempts, and a later success clears everything.
func TestRestartExhaustionMarksUnplaceable(t *testing.T) {
	retry := sam.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	inst := newRetryInstance(t, retry, nil, "h1")
	var mu sync.Mutex
	var abandoned []sam.PEFailure
	inst.SAM.AddListener("orc", sam.Listener{PEFailed: func(f sam.PEFailure) {
		if strings.HasPrefix(f.Reason, "restart abandoned") {
			mu.Lock()
			abandoned = append(abandoned, f)
			mu.Unlock()
		}
	}})
	ops.ResetCollector("rr2")
	app := pipelineApp(t, "RetryExhaust", "rr2", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{Owner: "orc"})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := inst.SAM.Job(jobID)
	target := info.PEs[0].ID
	if err := inst.Cluster.KillHost("h1"); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "PE crashed", func() bool {
		info, _ := inst.SAM.Job(jobID)
		return info.PEs[0].State == "crashed"
	})

	if err := inst.SAM.RestartPE(target); err == nil {
		t.Fatal("restart with no live host succeeded")
	}
	info, _ = inst.SAM.Job(jobID)
	if !info.PEs[0].Unplaceable {
		t.Fatalf("PE not marked unplaceable: %+v", info.PEs[0])
	}
	mu.Lock()
	if len(abandoned) != 1 || !strings.Contains(abandoned[0].Reason, "after 2 attempts") {
		t.Fatalf("degradation notifications = %+v", abandoned)
	}
	mu.Unlock()
	if got := len(restartJournal(inst.SAM, target)); got != 2 {
		t.Fatalf("journalled attempts = %d, want 2", got)
	}

	// Unplaceable: the next restart gets one attempt, no second escalation.
	if err := inst.SAM.RestartPE(target); err == nil {
		t.Fatal("restart with no live host succeeded")
	}
	if got := len(restartJournal(inst.SAM, target)); got != 3 {
		t.Fatalf("journalled attempts = %d, want 3 (single attempt while unplaceable)", got)
	}
	mu.Lock()
	if len(abandoned) != 1 {
		t.Fatalf("repeated escalation: %+v", abandoned)
	}
	mu.Unlock()

	// Recovery: success clears the mark and records cumulative attempts.
	if err := inst.Cluster.ReviveHost("h1"); err != nil {
		t.Fatal(err)
	}
	if err := inst.SAM.RestartPE(target); err != nil {
		t.Fatal(err)
	}
	info, _ = inst.SAM.Job(jobID)
	if info.PEs[0].State != "running" || info.PEs[0].Unplaceable {
		t.Fatalf("PE after recovery: %+v", info.PEs[0])
	}
	c, ok := inst.Cluster.PEContainer(target)
	if !ok {
		t.Fatal("no container after restart")
	}
	if got := c.PEMetrics().Counter(metrics.PERestartAttempts).Value(); got != 4 {
		t.Fatalf("nRestartAttempts = %d, want 4", got)
	}
}

// TestCheckpointRetriesInjectedStoreFaults: transient store failures
// are retried under the policy; the default zero policy stays
// single-attempt.
func TestCheckpointRetriesInjectedStoreFaults(t *testing.T) {
	store := ckpt.NewFaultStore(ckpt.NewMemStore(), nil)
	retry := sam.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	inst := newRetryInstance(t, retry, store, "h1")
	ops.ResetCollector("rr3")
	app := pipelineApp(t, "RetryCkpt", "rr3", 0)
	jobID, err := inst.SAM.SubmitJob(app, sam.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := inst.SAM.Job(jobID)
	target := info.PEs[0].ID
	store.FailSaves(2)
	if err := inst.SAM.CheckpointPE(target); err != nil {
		t.Fatalf("checkpoint did not outlast two injected failures: %v", err)
	}
	var recs []sam.AttemptRecord
	for _, rec := range inst.SAM.AttemptJournal() {
		if rec.Action == "checkpoint" && rec.PE == target {
			recs = append(recs, rec)
		}
	}
	if len(recs) != 3 || recs[0].Err == "" || recs[1].Err == "" || recs[2].Err != "" {
		t.Fatalf("checkpoint journal = %+v", recs)
	}
	// Permanent failures are not retried even with budget left.
	if err := inst.SAM.CheckpointPE(ids.PEID(9999)); err == nil {
		t.Fatal("checkpoint of unknown PE succeeded")
	}
	n := 0
	for _, rec := range inst.SAM.AttemptJournal() {
		if rec.Action == "checkpoint" && rec.PE == ids.PEID(9999) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("unknown-PE checkpoint journalled %d attempts, want 1", n)
	}
}
