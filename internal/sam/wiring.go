package sam

import (
	"fmt"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/transport"
)

// xlink is one established stream link crossing a PE boundary: either a
// static intra-job connection between two partitions, or a dynamic
// import/export connection between jobs (§2.1). Links survive PE restarts
// by being re-established under the same id.
type xlink struct {
	id       string
	fromJob  ids.JobID
	fromIdx  int
	fromOp   string
	fromPort int
	toJob    ids.JobID
	toIdx    int
	toOp     string
	toPort   int
	// link is the live transport for the current incarnation; replaced on
	// re-establishment and discarded (dropping in-flight items, as a
	// severed TCP connection would) when the xlink is dropped or replaced.
	link *transport.Link
}

// staticLinks derives the cross-PE links implied by a job's own ADL
// connections.
func (s *SAM) staticLinks(j *job) []*xlink {
	var out []*xlink
	for _, c := range j.app.Connects {
		fromIdx := j.app.PEOfOperator(c.FromOp)
		toIdx := j.app.PEOfOperator(c.ToOp)
		if fromIdx == toIdx {
			continue // fused: wired inside the container
		}
		s.nextLink++
		out = append(out, &xlink{
			id:      fmt.Sprintf("static-%d-%d", j.id, s.nextLink),
			fromJob: j.id, fromIdx: fromIdx, fromOp: c.FromOp, fromPort: c.FromPort,
			toJob: j.id, toIdx: toIdx, toOp: c.ToOp, toPort: c.ToPort,
		})
	}
	return out
}

// matchImportsLocked computes the dynamic links a newly submitted job
// forms with every running job (both directions: its imports against
// their exports, and its exports against their imports), skipping pairs
// whose schemas disagree.
func (s *SAM) matchImportsLocked(newJob *job) []*xlink {
	var out []*xlink
	for _, other := range s.jobs {
		// newJob's imports fed by other's exports. A job may import its
		// own exports, so other == newJob is allowed.
		for _, im := range newJob.app.Imports {
			for _, ex := range other.app.Exports {
				if other.id == newJob.id && im.Operator == ex.Operator {
					continue // never self-loop a single operator
				}
				if !im.Matches(ex) {
					continue
				}
				if l := s.dynamicLink(other, ex.Operator, ex.Port, newJob, im.Operator, im.Port); l != nil {
					out = append(out, l)
				}
			}
		}
		if other.id == newJob.id {
			continue
		}
		// newJob's exports feeding other's imports.
		for _, ex := range newJob.app.Exports {
			for _, im := range other.app.Imports {
				if !im.Matches(ex) {
					continue
				}
				if l := s.dynamicLink(newJob, ex.Operator, ex.Port, other, im.Operator, im.Port); l != nil {
					out = append(out, l)
				}
			}
		}
	}
	return out
}

func (s *SAM) dynamicLink(src *job, exOp string, exPort int, dst *job, imOp string, imPort int) *xlink {
	fromIdx := src.app.PEOfOperator(exOp)
	toIdx := dst.app.PEOfOperator(imOp)
	if fromIdx < 0 || toIdx < 0 {
		return nil
	}
	srcPE := src.pes[fromIdx]
	dstPE := dst.pes[toIdx]
	if srcPE == nil || dstPE == nil || srcPE.container == nil || dstPE.container == nil {
		return nil
	}
	outSchema, err1 := srcPE.container.OutputSchema(exOp, exPort)
	inSchema, err2 := dstPE.container.InputSchema(imOp, imPort)
	if err1 != nil || err2 != nil || !outSchema.Equal(inSchema) {
		s.cfg.Logf("sam: skipping import link %s:%d -> %s:%d: schema mismatch", exOp, exPort, imOp, imPort)
		return nil
	}
	s.nextLink++
	return &xlink{
		id:      fmt.Sprintf("dyn-%d-%d-%d", src.id, dst.id, s.nextLink),
		fromJob: src.id, fromIdx: fromIdx, fromOp: exOp, fromPort: exPort,
		toJob: dst.id, toIdx: toIdx, toOp: imOp, toPort: imPort,
	}
}

// establishLocked (re)creates the physical transport for a link. Adding
// an outlet under an existing id atomically replaces the previous
// incarnation, so re-establishing after a PE restart needs no separate
// teardown.
func (s *SAM) establishLocked(l *xlink) error {
	src, ok := s.jobs[l.fromJob]
	if !ok {
		return fmt.Errorf("sam: link %s: source job gone", l.id)
	}
	dst, ok := s.jobs[l.toJob]
	if !ok {
		return fmt.Errorf("sam: link %s: destination job gone", l.id)
	}
	srcPE := src.pes[l.fromIdx]
	dstPE := dst.pes[l.toIdx]
	if srcPE == nil || srcPE.container == nil || dstPE == nil || dstPE.container == nil {
		return fmt.Errorf("sam: link %s: endpoint container missing", l.id)
	}
	schema, err := srcPE.container.OutputSchema(l.fromOp, l.fromPort)
	if err != nil {
		return err
	}
	inlet, err := dstPE.container.ExternalBatchInlet(l.toOp, l.toPort)
	if err != nil {
		return err
	}
	link := transport.NewLink(
		schema, inlet,
		srcPE.container.PEMetrics().Counter(metrics.PETupleBytesSubmitted),
		dstPE.container.PEMetrics().Counter(metrics.PETupleBytesProcessed),
		func(err error) { s.cfg.Logf("sam: link %s: %v", l.id, err) },
	)
	if err := srcPE.container.AddOutlet(l.fromOp, l.fromPort, l.id, link.Send); err != nil {
		link.Discard()
		return err
	}
	if old := l.link; old != nil {
		// The previous incarnation's in-flight tuples are lost, exactly as
		// a severed TCP connection would lose them (crash-restart
		// semantics); Discard never blocks, so holding the SAM lock here
		// is fine.
		old.Discard()
	}
	l.link = link
	return nil
}

// LinkCount reports the number of live stream links (for tests and the
// expdriver's composition experiment).
func (s *SAM) LinkCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.links)
}
