// Package srm implements the Streams Resource Manager daemon (§2.2): it
// tracks which hosts are available, maintains status for system components
// and PEs, detects and notifies process/host failures, and serves as the
// central collector for every built-in and custom metric in the system.
// The ORCA service pulls metrics from SRM — never from the operators —
// which is why metric-scope orchestration stays off the tuple hot path.
package srm

import (
	"sort"
	"sync"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

// HostStatus is SRM's view of one host.
type HostStatus struct {
	Name string
	Tags []string
	Up   bool
}

// PEExit describes a PE leaving the running state, as reported by the
// host controller that supervised it.
type PEExit struct {
	PE      ids.PEID
	Job     ids.JobID
	App     string
	Host    string
	Crashed bool
	Reason  string
	At      time.Time
}

// HostDown describes a detected host failure.
type HostDown struct {
	Host string
	At   time.Time
}

// SRM is the resource manager daemon.
type SRM struct {
	mu       sync.RWMutex
	hosts    map[string]*HostStatus
	store    map[sampleKey]metrics.Sample
	exitSubs []func(PEExit)
	downSubs []func(HostDown)
}

type sampleKey struct {
	scope    metrics.Scope
	job      ids.JobID
	pe       ids.PEID
	operator string
	port     int
	dir      metrics.Direction
	name     string
}

// New returns an empty SRM.
func New() *SRM {
	return &SRM{
		hosts: make(map[string]*HostStatus),
		store: make(map[sampleKey]metrics.Sample),
	}
}

// RegisterHost records a host joining the instance.
func (s *SRM) RegisterHost(name string, tags []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosts[name] = &HostStatus{Name: name, Tags: append([]string(nil), tags...), Up: true}
}

// Hosts returns the status of every known host, sorted by name.
func (s *SRM) Hosts() []HostStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]HostStatus, 0, len(s.hosts))
	for _, h := range s.hosts {
		cp := *h
		cp.Tags = append([]string(nil), h.Tags...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HostUp reports whether the host is known and alive.
func (s *SRM) HostUp(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.hosts[name]
	return ok && h.Up
}

// ReportHostDown marks a host failed and notifies subscribers. The host
// controller's PE exits arrive separately with the same detection time so
// downstream consumers (the ORCA service) can correlate them into one
// epoch (§4.2).
func (s *SRM) ReportHostDown(name string, at time.Time) {
	s.mu.Lock()
	if h, ok := s.hosts[name]; ok {
		h.Up = false
	}
	subs := append([]func(HostDown){}, s.downSubs...)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(HostDown{Host: name, At: at})
	}
}

// ReportHostUp marks a host alive again (host recovery).
func (s *SRM) ReportHostUp(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hosts[name]; ok {
		h.Up = true
	}
}

// PushSamples ingests a metric batch from a host controller. Later
// samples for the same metric replace earlier ones.
func (s *SRM) PushSamples(batch []metrics.Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range batch {
		s.store[sampleKey{m.Scope, m.Job, m.PE, m.Operator, m.Port, m.Dir, m.Name}] = m
	}
}

// Query returns the latest sample of every metric belonging to any of the
// given jobs, in a deterministic order. This is the call the ORCA service
// issues on its pull interval (§4.2); one response carries all metrics of
// the managed jobs.
func (s *SRM) Query(jobs []ids.JobID) []metrics.Sample {
	want := make(map[ids.JobID]bool, len(jobs))
	for _, j := range jobs {
		want[j] = true
	}
	s.mu.RLock()
	out := make([]metrics.Sample, 0, 64)
	for _, m := range s.store {
		if want[m.Job] {
			out = append(out, m)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Job != b.Job:
			return a.Job < b.Job
		case a.PE != b.PE:
			return a.PE < b.PE
		case a.Operator != b.Operator:
			return a.Operator < b.Operator
		case a.Scope != b.Scope:
			return a.Scope < b.Scope
		case a.Port != b.Port:
			return a.Port < b.Port
		case a.Dir != b.Dir:
			return a.Dir < b.Dir
		default:
			return a.Name < b.Name
		}
	})
	return out
}

// DropJob discards all stored samples of a cancelled job.
func (s *SRM) DropJob(job ids.JobID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.store {
		if k.job == job {
			delete(s.store, k)
		}
	}
}

// ReportPEExit ingests a PE exit notification from a host controller and
// fans it out to subscribers (SAM).
func (s *SRM) ReportPEExit(e PEExit) {
	s.mu.RLock()
	subs := append([]func(PEExit){}, s.exitSubs...)
	s.mu.RUnlock()
	for _, fn := range subs {
		fn(e)
	}
}

// OnPEExit subscribes to PE exit notifications.
func (s *SRM) OnPEExit(fn func(PEExit)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exitSubs = append(s.exitSubs, fn)
}

// OnHostDown subscribes to host failure notifications.
func (s *SRM) OnHostDown(fn func(HostDown)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.downSubs = append(s.downSubs, fn)
}
