package srm

import (
	"testing"
	"time"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
)

func sample(job ids.JobID, pe ids.PEID, op, name string, v int64) metrics.Sample {
	return metrics.Sample{
		Scope: metrics.OperatorScope, Job: job, PE: pe, Operator: op,
		Name: name, Value: v, At: time.Unix(int64(v), 0),
	}
}

func TestHostRegistryAndStatus(t *testing.T) {
	s := New()
	s.RegisterHost("h2", []string{"ssd"})
	s.RegisterHost("h1", nil)
	hosts := s.Hosts()
	if len(hosts) != 2 || hosts[0].Name != "h1" || hosts[1].Name != "h2" {
		t.Fatalf("Hosts() = %+v", hosts)
	}
	if !s.HostUp("h1") || s.HostUp("ghost") {
		t.Fatal("HostUp wrong")
	}
	s.ReportHostDown("h1", time.Unix(10, 0))
	if s.HostUp("h1") {
		t.Fatal("host still up after failure")
	}
	s.ReportHostUp("h1")
	if !s.HostUp("h1") {
		t.Fatal("host not up after recovery")
	}
	// Unknown hosts are ignored.
	s.ReportHostDown("ghost", time.Now())
	s.ReportHostUp("ghost")
}

func TestHostDownNotifiesSubscribers(t *testing.T) {
	s := New()
	s.RegisterHost("h1", nil)
	var got []HostDown
	s.OnHostDown(func(d HostDown) { got = append(got, d) })
	at := time.Unix(99, 0)
	s.ReportHostDown("h1", at)
	if len(got) != 1 || got[0].Host != "h1" || !got[0].At.Equal(at) {
		t.Fatalf("notifications = %+v", got)
	}
}

func TestPushAndQuerySamples(t *testing.T) {
	s := New()
	s.PushSamples([]metrics.Sample{
		sample(1, 10, "a", "m1", 1),
		sample(1, 10, "a", "m2", 2),
		sample(2, 20, "b", "m1", 3),
	})
	got := s.Query([]ids.JobID{1})
	if len(got) != 2 {
		t.Fatalf("Query(1) = %d samples", len(got))
	}
	for _, m := range got {
		if m.Job != 1 {
			t.Fatalf("foreign sample %+v", m)
		}
	}
	both := s.Query([]ids.JobID{1, 2})
	if len(both) != 3 {
		t.Fatalf("Query(1,2) = %d", len(both))
	}
	if len(s.Query(nil)) != 0 {
		t.Fatal("empty query returned samples")
	}
}

func TestLaterSamplesReplaceEarlier(t *testing.T) {
	s := New()
	s.PushSamples([]metrics.Sample{sample(1, 10, "a", "m", 5)})
	s.PushSamples([]metrics.Sample{sample(1, 10, "a", "m", 9)})
	got := s.Query([]ids.JobID{1})
	if len(got) != 1 || got[0].Value != 9 {
		t.Fatalf("got %+v", got)
	}
}

func TestQueryOrderDeterministic(t *testing.T) {
	s := New()
	s.PushSamples([]metrics.Sample{
		sample(1, 11, "b", "m2", 1),
		sample(1, 10, "a", "m1", 2),
		sample(1, 11, "a", "m1", 3),
		sample(1, 10, "a", "m0", 4),
	})
	got := s.Query([]ids.JobID{1})
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.PE > b.PE || (a.PE == b.PE && a.Operator > b.Operator) {
			t.Fatalf("unsorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestDropJob(t *testing.T) {
	s := New()
	s.PushSamples([]metrics.Sample{sample(1, 10, "a", "m", 1), sample(2, 20, "b", "m", 2)})
	s.DropJob(1)
	if len(s.Query([]ids.JobID{1})) != 0 {
		t.Fatal("job 1 samples survived drop")
	}
	if len(s.Query([]ids.JobID{2})) != 1 {
		t.Fatal("job 2 samples lost")
	}
}

func TestPEExitFanout(t *testing.T) {
	s := New()
	var a, b []PEExit
	s.OnPEExit(func(e PEExit) { a = append(a, e) })
	s.OnPEExit(func(e PEExit) { b = append(b, e) })
	e := PEExit{PE: 7, Job: 3, App: "x", Host: "h1", Crashed: true, Reason: "boom"}
	s.ReportPEExit(e)
	if len(a) != 1 || len(b) != 1 || a[0] != e || b[0] != e {
		t.Fatalf("fanout: %+v %+v", a, b)
	}
}

func TestHostsCopyIsolated(t *testing.T) {
	s := New()
	s.RegisterHost("h1", []string{"tag"})
	hosts := s.Hosts()
	hosts[0].Tags[0] = "mutated"
	if s.Hosts()[0].Tags[0] != "tag" {
		t.Fatal("Hosts() exposed internal storage")
	}
}
