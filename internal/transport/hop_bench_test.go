package transport_test

import (
	"testing"

	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/pe"
	"streamorca/internal/transport"
	"streamorca/internal/tuple"
)

var intSchema = tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})

// benchSink counts tuples and signals when n arrived.
type benchSink struct {
	opapi.Base
	n    int
	want int
	done chan struct{}
}

func (s *benchSink) Process(int, tuple.Tuple) error {
	s.n++
	if s.n == s.want {
		close(s.done)
	}
	return nil
}

// BenchmarkIntraPEHop measures one fused hop: enqueue into a neighbour
// operator's channel, no serialization.
func BenchmarkIntraPEHop(b *testing.B) {
	sink := &benchSink{want: b.N, done: make(chan struct{})}
	reg := opapi.NewRegistry()
	reg.Register("BenchSink", func() opapi.Operator { return sink })
	p, err := pe.New(pe.Config{
		ID: 1, Job: 1, App: "bench",
		Ops:      []pe.OpSpec{{Name: "sink", Kind: "BenchSink", Inputs: []*tuple.Schema{intSchema}}},
		Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	inlet, err := p.ExternalInlet("sink", 0)
	if err != nil {
		b.Fatal(err)
	}
	t := tuple.Build(intSchema).Int("v", 42).Done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inlet(pe.TupleItem(t))
	}
	<-sink.done
}

// BenchmarkCrossPEHop measures the same hop through the serializing
// transport (encode + decode + byte accounting), the cost every unfused
// connection pays.
func BenchmarkCrossPEHop(b *testing.B) {
	sink := &benchSink{want: b.N, done: make(chan struct{})}
	reg := opapi.NewRegistry()
	reg.Register("BenchSink", func() opapi.Operator { return sink })
	p, err := pe.New(pe.Config{
		ID: 1, Job: 1, App: "bench",
		Ops:      []pe.OpSpec{{Name: "sink", Kind: "BenchSink", Inputs: []*tuple.Schema{intSchema}}},
		Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	inlet, err := p.ExternalInlet("sink", 0)
	if err != nil {
		b.Fatal(err)
	}
	var sent, recv metrics.Counter
	link := transport.NewLink(intSchema, inlet, &sent, &recv, nil)
	t := tuple.Build(intSchema).Int("v", 42).Done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link(pe.TupleItem(t))
	}
	<-sink.done
}
