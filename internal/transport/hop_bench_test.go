package transport_test

import (
	"testing"
	"time"

	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/pe"
	"streamorca/internal/transport"
	"streamorca/internal/tuple"
)

var intSchema = tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})

// benchSink counts tuples and signals when n arrived.
type benchSink struct {
	opapi.Base
	n    int
	want int
	done chan struct{}
}

func (s *benchSink) Process(int, tuple.Tuple) error {
	s.n++
	if s.n == s.want {
		close(s.done)
	}
	return nil
}

// BenchmarkIntraPEHop measures one fused hop: enqueue into a neighbour
// operator's channel, no serialization.
func BenchmarkIntraPEHop(b *testing.B) {
	sink := &benchSink{want: b.N, done: make(chan struct{})}
	reg := opapi.NewRegistry()
	reg.Register("BenchSink", func() opapi.Operator { return sink })
	p, err := pe.New(pe.Config{
		ID: 1, Job: 1, App: "bench",
		Ops:      []pe.OpSpec{{Name: "sink", Kind: "BenchSink", Inputs: []*tuple.Schema{intSchema}}},
		Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	inlet, err := p.ExternalInlet("sink", 0)
	if err != nil {
		b.Fatal(err)
	}
	t := tuple.Build(intSchema).Int("v", 42).Done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inlet(pe.TupleItem(t))
	}
	<-sink.done
}

// BenchmarkCrossPEHop measures the same hop through the serializing
// transport (encode + decode + byte accounting), the cost every unfused
// connection pays. Under load the link frames tuples, so channel
// synchronisation, codec buffers, and decoded tuple storage amortise
// across the batch.
func BenchmarkCrossPEHop(b *testing.B) {
	benchCrossPE(b, intSchema, tuple.Build(intSchema).Int("v", 42).Done())
}

// BenchmarkCrossPEHopMixed is the same hop with a realistic mixed
// int/string/timestamp schema; string attributes copy on decode, so this
// is the upper end of per-hop cost.
func BenchmarkCrossPEHopMixed(b *testing.B) {
	mixed := tuple.MustSchema(
		tuple.Attribute{Name: "sym", Type: tuple.String},
		tuple.Attribute{Name: "price", Type: tuple.Float},
		tuple.Attribute{Name: "seq", Type: tuple.Int},
		tuple.Attribute{Name: "at", Type: tuple.Timestamp},
	)
	t := tuple.Build(mixed).
		Str("sym", "IBM").Float("price", 101.25).Int("seq", 7).
		Time("at", time.Unix(0, 1345999999123456789).UTC()).Done()
	benchCrossPE(b, mixed, t)
}

func benchCrossPE(b *testing.B, schema *tuple.Schema, t tuple.Tuple) {
	sink := &benchSink{want: b.N, done: make(chan struct{})}
	reg := opapi.NewRegistry()
	reg.Register("BenchSink", func() opapi.Operator { return sink })
	p, err := pe.New(pe.Config{
		ID: 1, Job: 1, App: "bench",
		Ops:      []pe.OpSpec{{Name: "sink", Kind: "BenchSink", Inputs: []*tuple.Schema{schema}}},
		Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	inlet, err := p.ExternalBatchInlet("sink", 0)
	if err != nil {
		b.Fatal(err)
	}
	var sent, recv metrics.Counter
	link := transport.NewLink(schema, inlet, &sent, &recv, nil)
	defer link.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(pe.TupleItem(t))
	}
	<-sink.done
}
