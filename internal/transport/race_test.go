package transport

import (
	"runtime"
	"sync"
	"testing"

	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/pe"
	"streamorca/internal/tuple"
)

var intOnly = tuple.MustSchema(tuple.Attribute{Name: "v", Type: tuple.Int})

// tally is a batch-capable sink that records every value it sees, with
// multiplicity — the double-delivery assertion needs counts, not sets.
type tally struct {
	opapi.Base
	mu   sync.Mutex
	seen map[int64]int
}

func newTally() *tally { return &tally{seen: make(map[int64]int)} }

func (s *tally) Process(port int, t tuple.Tuple) error {
	s.mu.Lock()
	s.seen[t.Int("v")]++
	s.mu.Unlock()
	return nil
}

func (s *tally) ProcessBatch(port int, b *tuple.Batch) error {
	ref := b.Schema().MustRef("v")
	s.mu.Lock()
	for _, t := range b.Tuples() {
		s.seen[ref.Int(t)]++
	}
	s.mu.Unlock()
	return nil
}

func (s *tally) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

func (s *tally) snapshot() map[int64]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int64]int, len(s.seen))
	for k, v := range s.seen {
		out[k] = v
	}
	return out
}

func newSinkPE(t testing.TB, sink *tally) *pe.PE {
	t.Helper()
	reg := opapi.NewRegistry()
	reg.Register("Tally", func() opapi.Operator { return sink })
	p, err := pe.New(pe.Config{
		ID: 9, Job: 1, App: "race", Host: "h1",
		Ops:      []pe.OpSpec{{Name: "sink", Kind: "Tally", Inputs: []*tuple.Schema{intOnly}}},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLinkBatchPoolReuseRace drives two concurrent links into two PEs
// that share the global pe.Batch pool, so recycled batches from one
// PE's delivery loop are immediately reused by the other link's decode
// path. Run under -race this pins the pooled-Batch lifecycle: a Batch
// handed back by PutBatch must carry no unsynchronised reads or stale
// item slots into its next life. The value tally doubles as a
// corruption check — a batch recycled too early shows up as a wrong or
// duplicated value, not just as a race report.
func TestLinkBatchPoolReuseRace(t *testing.T) {
	const perLink = 4000
	sinks := [2]*tally{newTally(), newTally()}
	var links [2]*Link
	var pes [2]*pe.PE
	for i := range links {
		pes[i] = newSinkPE(t, sinks[i])
		inlet, err := pes[i].ExternalBatchInlet("sink", 0)
		if err != nil {
			t.Fatal(err)
		}
		var recv metrics.Counter
		links[i] = NewLink(intOnly, inlet, nil, &recv, func(err error) { t.Error(err) })
	}

	var wg sync.WaitGroup
	for i, link := range links {
		wg.Add(1)
		go func(base int64, l *Link) {
			defer wg.Done()
			for v := int64(0); v < perLink; v++ {
				tp := tuple.Build(intOnly).Int("v", base+v).Done()
				l.Send(pe.TupleItem(tp))
			}
			l.Flush()
		}(int64(i)*perLink, link)
	}
	wg.Wait()

	for i := range links {
		links[i].Close()
	}
	// Flush/Close only guarantee delivery into the PE's input queue;
	// Stop kills without draining, so wait for the sinks to consume.
	for _, sink := range sinks {
		for sink.count() < perLink {
			runtime.Gosched()
		}
	}
	for i := range pes {
		pes[i].Stop()
	}
	for i, sink := range sinks {
		got := sink.snapshot()
		if len(got) != perLink {
			t.Fatalf("link %d delivered %d distinct values, want %d", i, len(got), perLink)
		}
		base := int64(i) * perLink
		for v := base; v < base+perLink; v++ {
			if got[v] != 1 {
				t.Fatalf("link %d value %d delivered %d times", i, v, got[v])
			}
		}
	}
}

// TestLinkPEKillMidStream kills the receiving PE in the middle of a
// stream of frames, then discards the link — the chaos sequence a host
// failure triggers. The contract is loss without corruption: the sender
// must not wedge (enqueueBatch recycles batches once the PE is dead and
// Discard unblocks any send stuck on backpressure), nothing is
// delivered twice, and every value that did arrive is one the sender
// actually sent.
func TestLinkPEKillMidStream(t *testing.T) {
	const total = 8000
	sink := newTally()
	p := newSinkPE(t, sink)
	inlet, err := p.ExternalBatchInlet("sink", 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLink(intOnly, inlet, nil, nil, nil)

	// First half of the stream flows normally.
	for v := int64(0); v < total/2; v++ {
		link.Send(pe.TupleItem(tuple.Build(intOnly).Int("v", v).Done()))
	}
	for sink.count() == 0 {
		runtime.Gosched()
	}
	// Cut the PE down with frames still in flight, then keep sending:
	// the second half exercises the dead-receiver path end to end. If
	// enqueueBatch failed to recycle batches for a killed PE the link's
	// flusher would stall and these sends would wedge on backpressure.
	p.Kill("chaos: host failure")
	for v := int64(total / 2); v < total; v++ {
		link.Send(pe.TupleItem(tuple.Build(intOnly).Int("v", v).Done()))
	}
	link.Flush()
	link.Discard()
	link.Close()

	got := sink.snapshot()
	if len(got) == 0 {
		t.Fatal("kill fired before anything was delivered")
	}
	if len(got) >= total {
		t.Fatalf("all %d tuples delivered despite mid-stream kill", total)
	}
	for v, n := range got {
		if v < 0 || v >= total/2 {
			t.Fatalf("delivered value %d was sent after the kill (or never sent)", v)
		}
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
}
