// Package transport implements inter-PE stream links. In System S these
// are TCP connections between PE processes; here each link serialises
// tuples through the binary codec and hands the decoded copy to the remote
// PE's inlet. Round-tripping through bytes keeps the byte-count built-in
// metrics honest and guarantees no accidental sharing of tuple storage
// across the PE boundary (so killing a PE loses exactly its own state).
//
// Links batch: a sender enqueues items into a bounded pending buffer and a
// per-link flusher goroutine drains whatever has accumulated, encoding up
// to MaxFrameTuples tuples per frame and delivering each decoded frame to
// the remote PE as one pe.Batch (one queue operation). Under load frames
// fill and the per-tuple cost of channel synchronisation, codec buffers,
// and tuple storage amortises to zero steady-state allocations; when the
// stream is sparse the flusher drains immediately ("flush on queue
// drain"), so an idle link adds only a goroutine handoff of latency.
// Punctuation flushes the frame under construction and is delivered in
// position, preserving stream order.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/pe"
	"streamorca/internal/tuple"
)

// markOverhead is the on-wire size we account for a punctuation frame.
const markOverhead = 1

// MaxFrameTuples is the largest number of tuples encoded into one frame
// and delivered as one batch.
const MaxFrameTuples = 64

// maxPending bounds the sender-side buffer; a full buffer blocks the
// sender, preserving the backpressure a synchronous link used to provide.
const maxPending = 1024

// Link is one batching cross-PE stream connection. Send (the pe.Outlet)
// may be called from any producer goroutine; a dedicated flusher drains
// the pending buffer, frames, and delivers. Close drains whatever is
// pending and stops the flusher; a closed link drops further sends, the
// connection-level behaviour of a torn-down TCP link.
type Link struct {
	schema    *tuple.Schema
	remote    func(*pe.Batch)
	sentBytes *metrics.Counter
	recvBytes *metrics.Counter
	onErr     func(error)

	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	idle     sync.Cond
	pending  []pe.Item
	scratch  []pe.Item
	shipping bool
	closed   bool
	discard  atomic.Bool
	done     chan struct{}

	offs []int // per-tuple end offsets within the frame buffer
}

// NewLink builds a link shipping items to remote, which receives decoded
// batches and owns them (pe.ExternalBatchInlet has the right shape).
// sentBytes and recvBytes are the PE-level byte counters of the sending
// and receiving containers (either may be nil). Tuples that fail to
// round-trip the codec are dropped after invoking onErr; a nil onErr drops
// silently (the connection-level behaviour of a lossy crash-prone link).
// The caller must Close the link when the connection is torn down.
func NewLink(schema *tuple.Schema, remote func(*pe.Batch), sentBytes, recvBytes *metrics.Counter, onErr func(error)) *Link {
	l := &Link{
		schema:    schema,
		remote:    remote,
		sentBytes: sentBytes,
		recvBytes: recvBytes,
		onErr:     onErr,
		done:      make(chan struct{}),
	}
	l.notEmpty.L = &l.mu
	l.notFull.L = &l.mu
	l.idle.L = &l.mu
	go l.flusher()
	return l
}

// Send enqueues one item for delivery; it is the link's pe.Outlet. It
// blocks when the pending buffer is full (backpressure) and drops the item
// when the link has been closed.
func (l *Link) Send(it pe.Item) {
	l.mu.Lock()
	for len(l.pending) >= maxPending && !l.closed {
		l.notFull.Wait()
	}
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.pending = append(l.pending, it)
	if len(l.pending) == 1 {
		l.notEmpty.Signal()
	}
	l.mu.Unlock()
}

// Flush blocks until everything sent so far has been delivered to remote.
func (l *Link) Flush() {
	l.mu.Lock()
	for len(l.pending) > 0 || l.shipping {
		l.idle.Wait()
	}
	l.mu.Unlock()
}

// Close drains the pending buffer, delivers it, and stops the flusher.
// Items sent after Close are dropped. Close is idempotent.
func (l *Link) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.notEmpty.Broadcast()
		l.notFull.Broadcast()
	}
	l.mu.Unlock()
	<-l.done
}

// Discard tears the link down without draining: pending items are dropped
// and the flusher stops shipping at the next frame boundary. It does not
// block waiting for the flusher — the teardown path for a cancelled job or
// restarted PE, where in-flight tuples are lost exactly as a severed TCP
// connection would lose them.
func (l *Link) Discard() {
	l.discard.Store(true)
	l.mu.Lock()
	if !l.closed {
		l.closed = true
	}
	for k := range l.pending {
		l.pending[k] = pe.Item{}
	}
	l.pending = l.pending[:0]
	l.notEmpty.Broadcast()
	l.notFull.Broadcast()
	l.mu.Unlock()
}

// flusher is the link's delivery goroutine: swap out whatever is pending,
// ship it, repeat; exit once closed and drained.
func (l *Link) flusher() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.closed {
			l.idle.Broadcast()
			l.notEmpty.Wait()
		}
		if len(l.pending) == 0 {
			// Closed and drained.
			l.idle.Broadcast()
			l.mu.Unlock()
			return
		}
		batch := l.pending
		l.pending = l.scratch[:0]
		l.scratch = batch
		l.shipping = true
		l.notFull.Broadcast()
		l.mu.Unlock()

		l.ship(batch)
		// Clear shipped slots before they become the next scratch buffer,
		// so an idle link does not pin the last burst's tuple storage.
		for k := range batch {
			batch[k] = pe.Item{}
		}

		l.mu.Lock()
		l.shipping = false
		l.idle.Broadcast()
		l.mu.Unlock()
	}
}

// ship frames and delivers one drained run of items, preserving order:
// consecutive tuples accumulate into frames of up to MaxFrameTuples;
// punctuation flushes the open frame and travels in position.
func (l *Link) ship(items []pe.Item) {
	i := 0
	for i < len(items) {
		if l.discard.Load() {
			return
		}
		if items[i].IsMark() {
			if l.sentBytes != nil {
				l.sentBytes.Add(markOverhead)
			}
			if l.recvBytes != nil {
				l.recvBytes.Add(markOverhead)
			}
			b := pe.GetBatch()
			b.Items = append(b.Items, items[i])
			l.remote(b)
			i++
			continue
		}
		i = l.shipFrame(items, i)
	}
}

// shipFrame encodes a run of tuples starting at items[i] into one frame,
// decodes it into a fresh tuple block, and delivers the block as one
// batch. It returns the index of the first unconsumed item.
func (l *Link) shipFrame(items []pe.Item, i int) int {
	bp := tuple.GetBuf()
	buf := *bp
	defer func() { *bp = buf; tuple.PutBuf(bp) }()
	offs := l.offs[:0]
	j := i
	for j < len(items) && len(offs) < MaxFrameTuples && !items[j].IsMark() {
		n0 := len(buf)
		var err error
		buf, err = tuple.Encode(buf, items[j].T)
		if err != nil {
			buf = buf[:n0]
			if l.onErr != nil {
				l.onErr(fmt.Errorf("transport: encode: %w", err))
			}
			j++
			continue
		}
		offs = append(offs, len(buf))
		j++
	}
	l.offs = offs
	if len(offs) == 0 {
		return j
	}
	if l.sentBytes != nil {
		l.sentBytes.Add(int64(len(buf)))
	}
	block := tuple.NewBlock(l.schema, len(offs))
	b := pe.GetBatch()
	received := 0
	start := 0
	for k, end := range offs {
		used, err := tuple.DecodeInto(&block[k], buf[start:end])
		if err != nil || used != end-start {
			if l.onErr != nil {
				if err == nil {
					err = errors.New("leftover bytes")
				}
				l.onErr(fmt.Errorf("transport: decode (%d of %d bytes): %v", used, end-start, err))
			}
		} else {
			b.Items = append(b.Items, pe.TupleItem(block[k]))
			received += end - start
		}
		start = end
	}
	if l.recvBytes != nil && received > 0 {
		l.recvBytes.Add(int64(received))
	}
	if len(b.Items) > 0 && !l.discard.Load() {
		l.remote(b)
	} else {
		pe.PutBatch(b)
	}
	return j
}

// LinkID names a link deterministically so it can be removed and re-added
// when either endpoint PE restarts. incarnation distinguishes successive
// lives of the downstream PE.
func LinkID(from ids.PEID, fromOp string, fromPort int, to ids.PEID, toOp string, toPort int, incarnation int) string {
	return fmt.Sprintf("%s/%s:%d->%s/%s:%d#%d", from, fromOp, fromPort, to, toOp, toPort, incarnation)
}
