// Package transport implements inter-PE stream links. In System S these
// are TCP connections between PE processes; here each link serialises
// tuples through the binary codec and hands the decoded copy to the remote
// PE's inlet. Round-tripping through bytes keeps the byte-count built-in
// metrics honest and guarantees no accidental sharing of tuple storage
// across the PE boundary (so killing a PE loses exactly its own state).
package transport

import (
	"fmt"

	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/pe"
	"streamorca/internal/tuple"
)

// markOverhead is the on-wire size we account for a punctuation frame.
const markOverhead = 1

// NewLink builds a PE outlet that ships items to remote. sentBytes and
// recvBytes are the PE-level byte counters of the sending and receiving
// containers (either may be nil). Tuples that fail to round-trip the codec
// are dropped after invoking onErr; a nil onErr drops silently (the
// connection-level behaviour of a lossy crash-prone link).
func NewLink(schema *tuple.Schema, remote func(pe.Item), sentBytes, recvBytes *metrics.Counter, onErr func(error)) pe.Outlet {
	buf := make([]byte, 0, 128)
	return func(it pe.Item) {
		if it.IsMark() {
			if sentBytes != nil {
				sentBytes.Add(markOverhead)
			}
			if recvBytes != nil {
				recvBytes.Add(markOverhead)
			}
			remote(it)
			return
		}
		var err error
		buf, err = tuple.Encode(buf[:0], it.T)
		if err != nil {
			if onErr != nil {
				onErr(fmt.Errorf("transport: encode: %w", err))
			}
			return
		}
		n := len(buf)
		if sentBytes != nil {
			sentBytes.Add(int64(n))
		}
		out, used, err := tuple.Decode(schema, buf)
		if err != nil || used != n {
			if onErr != nil {
				onErr(fmt.Errorf("transport: decode (%d of %d bytes): %v", used, n, err))
			}
			return
		}
		if recvBytes != nil {
			recvBytes.Add(int64(n))
		}
		remote(pe.TupleItem(out))
	}
}

// LinkID names a link deterministically so it can be removed and re-added
// when either endpoint PE restarts. incarnation distinguishes successive
// lives of the downstream PE.
func LinkID(from ids.PEID, fromOp string, fromPort int, to ids.PEID, toOp string, toPort int, incarnation int) string {
	return fmt.Sprintf("%s/%s:%d->%s/%s:%d#%d", from, fromOp, fromPort, to, toOp, toPort, incarnation)
}
