package transport

import (
	"strings"
	"testing"

	"streamorca/internal/metrics"
	"streamorca/internal/pe"
	"streamorca/internal/tuple"
)

var schema = tuple.MustSchema(
	tuple.Attribute{Name: "v", Type: tuple.Int},
	tuple.Attribute{Name: "s", Type: tuple.String},
)

func TestLinkDeliversDecodedCopy(t *testing.T) {
	var got []pe.Item
	var sent, recv metrics.Counter
	link := NewLink(schema, func(it pe.Item) { got = append(got, it) }, &sent, &recv, nil)
	in := tuple.Build(schema).Int("v", 42).Str("s", "hello").Done()
	link(pe.TupleItem(in))
	if len(got) != 1 {
		t.Fatalf("delivered %d items", len(got))
	}
	out := got[0].T
	if out.Int("v") != 42 || out.String("s") != "hello" {
		t.Fatalf("delivered %s", out.Format())
	}
	// Mutating the original must not affect the delivered copy.
	if err := in.SetInt("v", 7); err != nil {
		t.Fatal(err)
	}
	if out.Int("v") != 42 {
		t.Fatal("link shared tuple storage across the boundary")
	}
	want := int64(tuple.EncodedSize(in))
	if sent.Value() != want || recv.Value() != want {
		t.Fatalf("bytes sent=%d recv=%d want %d", sent.Value(), recv.Value(), want)
	}
}

func TestLinkMarksCountOverhead(t *testing.T) {
	var got []pe.Item
	var sent, recv metrics.Counter
	link := NewLink(schema, func(it pe.Item) { got = append(got, it) }, &sent, &recv, nil)
	link(pe.MarkItem(tuple.FinalMark))
	if len(got) != 1 || got[0].Mark != tuple.FinalMark {
		t.Fatalf("marks not forwarded: %+v", got)
	}
	if sent.Value() != markOverhead || recv.Value() != markOverhead {
		t.Fatalf("mark bytes sent=%d recv=%d", sent.Value(), recv.Value())
	}
}

func TestLinkNilCountersTolerated(t *testing.T) {
	var n int
	link := NewLink(schema, func(pe.Item) { n++ }, nil, nil, nil)
	link(pe.TupleItem(tuple.New(schema)))
	link(pe.MarkItem(tuple.WindowMark))
	if n != 2 {
		t.Fatalf("delivered %d", n)
	}
}

func TestLinkEncodeErrorDropped(t *testing.T) {
	var delivered int
	var errs []error
	link := NewLink(schema, func(pe.Item) { delivered++ }, nil, nil, func(err error) { errs = append(errs, err) })
	link(pe.TupleItem(tuple.Tuple{})) // invalid tuple fails to encode
	if delivered != 0 {
		t.Fatal("invalid tuple delivered")
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "encode") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestLinkSchemaMismatchDropped(t *testing.T) {
	other := tuple.MustSchema(tuple.Attribute{Name: "x", Type: tuple.Float})
	var delivered int
	var errs []error
	// Link decodes with a schema narrower than the sender's, so leftover
	// bytes signal a mismatch.
	link := NewLink(other, func(pe.Item) { delivered++ }, nil, nil, func(err error) { errs = append(errs, err) })
	big := tuple.Build(schema).Int("v", 1).Str("s", "aaaaaaaaaaaaaaaa").Done()
	link(pe.TupleItem(big))
	if delivered != 0 {
		t.Fatal("mismatched tuple delivered")
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
}

func TestLinkID(t *testing.T) {
	a := LinkID(1, "op1", 0, 2, "op2", 1, 0)
	b := LinkID(1, "op1", 0, 2, "op2", 1, 1)
	if a == b {
		t.Fatal("incarnation not reflected in link id")
	}
	if !strings.Contains(a, "op1") || !strings.Contains(a, "op2") {
		t.Fatalf("link id %q", a)
	}
}
