package transport

import (
	"strings"
	"testing"

	"streamorca/internal/metrics"
	"streamorca/internal/pe"
	"streamorca/internal/tuple"
)

var schema = tuple.MustSchema(
	tuple.Attribute{Name: "v", Type: tuple.Int},
	tuple.Attribute{Name: "s", Type: tuple.String},
)

// collectRemote gathers delivered items; safe because the link's flusher
// is the only goroutine calling it and tests read after Flush/Close.
func collectRemote(got *[]pe.Item) func(*pe.Batch) {
	return func(b *pe.Batch) {
		*got = append(*got, b.Items...)
		pe.PutBatch(b)
	}
}

func TestLinkDeliversDecodedCopy(t *testing.T) {
	var got []pe.Item
	var sent, recv metrics.Counter
	link := NewLink(schema, collectRemote(&got), &sent, &recv, nil)
	defer link.Close()
	in := tuple.Build(schema).Int("v", 42).Str("s", "hello").Done()
	link.Send(pe.TupleItem(in))
	link.Flush()
	if len(got) != 1 {
		t.Fatalf("delivered %d items", len(got))
	}
	out := got[0].T
	if out.Int("v") != 42 || out.String("s") != "hello" {
		t.Fatalf("delivered %s", out.Format())
	}
	// Mutating the original must not affect the delivered copy.
	if err := in.SetInt("v", 7); err != nil {
		t.Fatal(err)
	}
	if out.Int("v") != 42 {
		t.Fatal("link shared tuple storage across the boundary")
	}
	want := int64(tuple.EncodedSize(in))
	if sent.Value() != want || recv.Value() != want {
		t.Fatalf("bytes sent=%d recv=%d want %d", sent.Value(), recv.Value(), want)
	}
}

func TestLinkMarksCountOverhead(t *testing.T) {
	var got []pe.Item
	var sent, recv metrics.Counter
	link := NewLink(schema, collectRemote(&got), &sent, &recv, nil)
	defer link.Close()
	link.Send(pe.MarkItem(tuple.FinalMark))
	link.Flush()
	if len(got) != 1 || got[0].Mark != tuple.FinalMark {
		t.Fatalf("marks not forwarded: %+v", got)
	}
	if sent.Value() != markOverhead || recv.Value() != markOverhead {
		t.Fatalf("mark bytes sent=%d recv=%d", sent.Value(), recv.Value())
	}
}

func TestLinkNilCountersTolerated(t *testing.T) {
	var got []pe.Item
	link := NewLink(schema, collectRemote(&got), nil, nil, nil)
	link.Send(pe.TupleItem(tuple.New(schema)))
	link.Send(pe.MarkItem(tuple.WindowMark))
	link.Close() // Close drains everything still pending
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].IsMark() || got[1].Mark != tuple.WindowMark {
		t.Fatalf("order not preserved: %+v", got)
	}
}

func TestLinkEncodeErrorDropped(t *testing.T) {
	var delivered int
	var errs []error
	link := NewLink(schema, func(b *pe.Batch) { delivered += len(b.Items); pe.PutBatch(b) },
		nil, nil, func(err error) { errs = append(errs, err) })
	link.Send(pe.TupleItem(tuple.Tuple{})) // invalid tuple fails to encode
	link.Flush()
	if delivered != 0 {
		t.Fatal("invalid tuple delivered")
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "encode") {
		t.Fatalf("errs = %v", errs)
	}
	link.Close()
}

func TestLinkSchemaMismatchDropped(t *testing.T) {
	other := tuple.MustSchema(tuple.Attribute{Name: "x", Type: tuple.Float})
	var delivered int
	var errs []error
	// Link decodes with a schema narrower than the sender's, so leftover
	// bytes signal a mismatch.
	link := NewLink(other, func(b *pe.Batch) { delivered += len(b.Items); pe.PutBatch(b) },
		nil, nil, func(err error) { errs = append(errs, err) })
	big := tuple.Build(schema).Int("v", 1).Str("s", "aaaaaaaaaaaaaaaa").Done()
	link.Send(pe.TupleItem(big))
	link.Flush()
	if delivered != 0 {
		t.Fatal("mismatched tuple delivered")
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	link.Close()
}

// TestLinkBatchesUnderLoad checks that many queued tuples arrive intact,
// in order, and with exact byte accounting through the framed path.
func TestLinkBatchesUnderLoad(t *testing.T) {
	var got []pe.Item
	var sent, recv metrics.Counter
	link := NewLink(schema, collectRemote(&got), &sent, &recv, nil)
	const n = 10 * MaxFrameTuples
	var wantBytes int64
	for i := 0; i < n; i++ {
		tp := tuple.Build(schema).Int("v", int64(i)).Str("s", "payload").Done()
		wantBytes += int64(tuple.EncodedSize(tp))
		link.Send(pe.TupleItem(tp))
		if i == n/2 {
			link.Send(pe.MarkItem(tuple.WindowMark))
		}
	}
	link.Close()
	if len(got) != n+1 {
		t.Fatalf("delivered %d items, want %d", len(got), n+1)
	}
	seq := int64(0)
	marks := 0
	for _, it := range got {
		if it.IsMark() {
			marks++
			continue
		}
		if it.T.Int("v") != seq {
			t.Fatalf("out of order: got %d want %d", it.T.Int("v"), seq)
		}
		seq++
	}
	if marks != 1 {
		t.Fatalf("marks = %d", marks)
	}
	wantBytes += markOverhead
	if sent.Value() != wantBytes || recv.Value() != wantBytes {
		t.Fatalf("bytes sent=%d recv=%d want %d", sent.Value(), recv.Value(), wantBytes)
	}
}

func TestLinkSendAfterCloseDropped(t *testing.T) {
	var got []pe.Item
	link := NewLink(schema, collectRemote(&got), nil, nil, nil)
	link.Close()
	link.Send(pe.TupleItem(tuple.New(schema)))
	if len(got) != 0 {
		t.Fatalf("delivered %d after close", len(got))
	}
	link.Close() // idempotent
}

func TestLinkID(t *testing.T) {
	a := LinkID(1, "op1", 0, 2, "op2", 1, 0)
	b := LinkID(1, "op1", 0, 2, "op2", 1, 1)
	if a == b {
		t.Fatal("incarnation not reflected in link id")
	}
	if !strings.Contains(a, "op1") || !strings.Contains(a, "op2") {
		t.Fatalf("link id %q", a)
	}
}
