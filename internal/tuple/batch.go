package tuple

// Batch is a schema-homogeneous run of tuples handed through the batch
// execution path: the PE delivery loop presents whole transport frames
// (and coalesced intra-PE runs) to operators implementing the opt-in
// ProcessBatch SPI as one Batch instead of one virtual call per tuple.
//
// A Batch comes in two flavours sharing one type:
//
//   - A *view* batch points at tuples that already exist (a decoded
//     frame block, a run of queued items). SetView installs the run;
//     the batch owns nothing.
//   - An *owned* batch (NewBatch / Reset) carries its own block-backed
//     storage — one allocation per typed array for the whole run,
//     exactly like NewBlock — and reuses that storage across Resets.
//     Operators producing one output per input (Functor) fill an owned
//     batch instead of allocating per tuple.
//
// Ownership contract for consumers (ProcessBatch implementers): the
// Batch and the tuple slice it exposes are only valid for the duration
// of the call — the runtime reuses the view. The tuples themselves
// follow the normal framing rules: tuples of one frame share block
// storage, so retaining one past the call requires Clone, while
// submitting it downstream is always safe (ownership passes with the
// submit).
type Batch struct {
	schema *Schema
	ts     []Tuple
	// Owned backing blocks; nil for view batches. Reset reuses them when
	// capacity allows, which is what makes a pooled decode/output batch
	// allocation-free at steady state.
	nums []int64
	strs []string
}

// NewBatch returns an owned batch of n zero-valued tuples of schema s,
// backed by one block allocation per typed array.
func NewBatch(s *Schema, n int) *Batch {
	b := &Batch{}
	b.Reset(s, n)
	return b
}

// Reset sizes the batch to n zero-valued tuples of schema s, reusing the
// owned backing storage when its capacity suffices (timestamp slots are
// re-planted with the zero-time sentinel, string slots cleared so old
// frames are not pinned). A view batch becomes an owned batch on its
// first Reset.
func (b *Batch) Reset(s *Schema, n int) {
	b.schema = s
	if n <= 0 {
		b.ts = b.ts[:0]
		return
	}
	nNums, nStrs := n*s.nNums, n*s.nStrs
	if cap(b.nums) < nNums {
		b.nums = make([]int64, nNums)
	} else {
		b.nums = b.nums[:nNums]
		clear(b.nums)
	}
	if cap(b.strs) < nStrs {
		b.strs = make([]string, nStrs)
	} else {
		b.strs = b.strs[:nStrs]
		clear(b.strs)
	}
	if cap(b.ts) < n {
		b.ts = make([]Tuple, n)
	} else {
		b.ts = b.ts[:n]
	}
	for i := range b.ts {
		b.ts[i].schema = s
		if s.nNums > 0 {
			b.ts[i].nums = b.nums[i*s.nNums : (i+1)*s.nNums : (i+1)*s.nNums]
			for _, k := range s.tsSlots {
				b.ts[i].nums[k] = zeroTimeNanos
			}
		} else {
			b.ts[i].nums = nil
		}
		if s.nStrs > 0 {
			b.ts[i].strs = b.strs[i*s.nStrs : (i+1)*s.nStrs : (i+1)*s.nStrs]
		} else {
			b.ts[i].strs = nil
		}
	}
}

// SetView points the batch at an existing run of tuples without copying
// any storage; the run must be homogeneous in schema. The previous view
// is discarded; owned backing storage, if any, is kept for a later
// Reset.
func (b *Batch) SetView(ts []Tuple) {
	b.ts = ts
	if len(ts) > 0 {
		b.schema = ts[0].schema
	} else {
		b.schema = nil
	}
}

// Schema returns the schema shared by every tuple of the batch (nil for
// an empty view).
func (b *Batch) Schema() *Schema { return b.schema }

// Len returns the number of tuples in the batch.
func (b *Batch) Len() int { return len(b.ts) }

// At returns the i-th tuple of the batch.
func (b *Batch) At(i int) Tuple { return b.ts[i] }

// Tuples returns the batch's tuple run for range loops. The slice is
// only valid under the same lifetime rules as the batch itself.
func (b *Batch) Tuples() []Tuple { return b.ts }
