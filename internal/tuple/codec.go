package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Codec errors are wrapped with this prefix so transport code can log a
// recognisable failure source.
const codecPrefix = "tuple codec"

// Encode appends the binary representation of t to dst and returns the
// extended slice. The layout is schema-relative: the receiver must know the
// schema (both ends of a stream connection share the compiled schema, as in
// System S where the ADL fixes port schemas at compile time).
//
// Wire format per attribute:
//
//	Int       varint (zig-zag)
//	Float     8 bytes IEEE-754 big endian
//	String    uvarint length + bytes
//	Bool      1 byte
//	Timestamp varint unix-nanos
func Encode(dst []byte, t Tuple) ([]byte, error) {
	if !t.Valid() {
		return dst, fmt.Errorf("%s: encoding invalid tuple", codecPrefix)
	}
	for i := range t.vals {
		switch t.schema.Attr(i).Type {
		case Int:
			dst = binary.AppendVarint(dst, t.vals[i].(int64))
		case Float:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(t.vals[i].(float64)))
		case String:
			s := t.vals[i].(string)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		case Bool:
			if t.vals[i].(bool) {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case Timestamp:
			dst = binary.AppendVarint(dst, t.vals[i].(time.Time).UnixNano())
		}
	}
	return dst, nil
}

// EncodedSize returns the number of bytes Encode would produce for t. The
// transport uses it for the nTupleBytesSubmitted/Processed built-in metrics
// without forcing an extra copy.
func EncodedSize(t Tuple) int {
	if !t.Valid() {
		return 0
	}
	n := 0
	var scratch [binary.MaxVarintLen64]byte
	for i := range t.vals {
		switch t.schema.Attr(i).Type {
		case Int:
			n += binary.PutVarint(scratch[:], t.vals[i].(int64))
		case Float:
			n += 8
		case String:
			l := len(t.vals[i].(string))
			n += binary.PutUvarint(scratch[:], uint64(l)) + l
		case Bool:
			n++
		case Timestamp:
			n += binary.PutVarint(scratch[:], t.vals[i].(time.Time).UnixNano())
		}
	}
	return n
}

// Decode parses one tuple of schema s from data, returning the tuple and
// the number of bytes consumed.
func Decode(s *Schema, data []byte) (Tuple, int, error) {
	t := New(s)
	off := 0
	for i := 0; i < s.NumAttrs(); i++ {
		switch s.Attr(i).Type {
		case Int:
			v, n := binary.Varint(data[off:])
			if n <= 0 {
				return Tuple{}, 0, fmt.Errorf("%s: truncated varint for %q", codecPrefix, s.Attr(i).Name)
			}
			t.vals[i] = v
			off += n
		case Float:
			if len(data[off:]) < 8 {
				return Tuple{}, 0, fmt.Errorf("%s: truncated float for %q", codecPrefix, s.Attr(i).Name)
			}
			t.vals[i] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
			off += 8
		case String:
			l, n := binary.Uvarint(data[off:])
			if n <= 0 || uint64(len(data[off+n:])) < l {
				return Tuple{}, 0, fmt.Errorf("%s: truncated string for %q", codecPrefix, s.Attr(i).Name)
			}
			off += n
			t.vals[i] = string(data[off : off+int(l)])
			off += int(l)
		case Bool:
			if len(data[off:]) < 1 {
				return Tuple{}, 0, fmt.Errorf("%s: truncated bool for %q", codecPrefix, s.Attr(i).Name)
			}
			t.vals[i] = data[off] != 0
			off++
		case Timestamp:
			v, n := binary.Varint(data[off:])
			if n <= 0 {
				return Tuple{}, 0, fmt.Errorf("%s: truncated timestamp for %q", codecPrefix, s.Attr(i).Name)
			}
			t.vals[i] = time.Unix(0, v).UTC()
			off += n
		}
	}
	return t, off, nil
}
