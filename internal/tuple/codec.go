package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Codec errors are wrapped with this prefix so transport code can log a
// recognisable failure source.
const codecPrefix = "tuple codec"

// ErrTruncated is the typed cause of every decode failure on short,
// overlong, or otherwise malformed input; transports match it with
// errors.Is instead of parsing error strings.
var ErrTruncated = errors.New(codecPrefix + ": truncated or malformed input")

// bufPool recycles encode buffers so steady-state framing on the hop path
// allocates nothing.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuf returns a pooled encode buffer (length 0) behind a stable
// pointer; write appends back through the pointer and return it with
// PutBuf when the frame has been consumed. The pointer indirection keeps
// the get/put cycle itself allocation-free.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// maxPooledBuf bounds what PutBuf keeps: truly pathological buffers (a
// multi-megabyte string attribute) must not permanently inflate the
// pool. The bound is grow-and-keep sized for the largest steady-state
// producer — checkpoint snapshots of big group windows run to ~100 KB
// per capture (BenchmarkCheckpointEncode g10_s600) and must reuse their
// grown buffer instead of falling out of the fast path and reallocating
// on every capture, which a hop-frame-sized bound made them do.
const maxPooledBuf = 1 << 20

// PutBuf returns a buffer obtained from GetBuf (possibly regrown by
// appends) to the pool; oversized outliers are dropped for the GC.
func PutBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// Encode appends the binary representation of t to dst and returns the
// extended slice. The layout is schema-relative: the receiver must know the
// schema (both ends of a stream connection share the compiled schema, as in
// System S where the ADL fixes port schemas at compile time).
//
// Wire format per attribute, in schema order:
//
//	Int       varint (zig-zag)
//	Float     8 bytes IEEE-754 big endian
//	String    uvarint length + bytes
//	Bool      1 byte
//	Timestamp varint unix-nanos (math.MinInt64 encodes the zero time)
//
// Encoding reads straight out of the tuple's typed storage, so it performs
// no per-attribute boxing or allocation.
func Encode(dst []byte, t Tuple) ([]byte, error) {
	if !t.Valid() {
		return dst, fmt.Errorf("%s: encoding invalid tuple", codecPrefix)
	}
	ni, si := 0, 0
	for _, a := range t.schema.attrs {
		switch a.Type {
		case Int, Timestamp:
			dst = binary.AppendVarint(dst, t.nums[ni])
			ni++
		case Float:
			dst = binary.BigEndian.AppendUint64(dst, uint64(t.nums[ni]))
			ni++
		case String:
			s := t.strs[si]
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
			si++
		case Bool:
			if t.nums[ni] != 0 {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
			ni++
		}
	}
	return dst, nil
}

// EncodedSize returns the number of bytes Encode would produce for t. The
// transport uses it for the nTupleBytesSubmitted/Processed built-in metrics
// without forcing an extra copy.
func EncodedSize(t Tuple) int {
	if !t.Valid() {
		return 0
	}
	n := 0
	var scratch [binary.MaxVarintLen64]byte
	ni, si := 0, 0
	for _, a := range t.schema.attrs {
		switch a.Type {
		case Int, Timestamp:
			n += binary.PutVarint(scratch[:], t.nums[ni])
			ni++
		case Float:
			n += 8
			ni++
		case String:
			l := len(t.strs[si])
			n += binary.PutUvarint(scratch[:], uint64(l)) + l
			si++
		case Bool:
			n++
			ni++
		}
	}
	return n
}

// Decode parses one tuple of schema s from data, returning the tuple and
// the number of bytes consumed. It allocates fresh storage; hot paths that
// own a reusable tuple should call DecodeInto instead.
func Decode(s *Schema, data []byte) (Tuple, int, error) {
	t := New(s)
	n, err := DecodeInto(&t, data)
	if err != nil {
		return Tuple{}, 0, err
	}
	return t, n, nil
}

// DecodeInto parses one tuple of t's schema from data into t's existing
// storage, returning the number of bytes consumed. The tuple keeps its
// storage across calls, so decoding fixed-width attributes allocates
// nothing; string attributes copy their bytes out of data (one allocation
// per string), which is what makes retaining a decoded string safe.
//
// All malformed-input failures wrap ErrTruncated; passing an invalid
// tuple is a programming error reported separately. On error the tuple's
// contents are unspecified but its storage is intact for the next call.
func DecodeInto(t *Tuple, data []byte) (int, error) {
	if !t.Valid() {
		// A caller-side programming error, not malformed wire input: do
		// not classify it as ErrTruncated.
		return 0, fmt.Errorf("%s: decode into invalid tuple", codecPrefix)
	}
	s := t.schema
	ni, si := 0, 0
	off := 0
	for i := range s.attrs {
		switch s.attrs[i].Type {
		case Int, Timestamp:
			v, n := binary.Varint(data[off:])
			if n <= 0 {
				return 0, fmt.Errorf("%w: varint for %q", ErrTruncated, s.attrs[i].Name)
			}
			t.nums[ni] = v
			ni++
			off += n
		case Float:
			if len(data)-off < 8 {
				return 0, fmt.Errorf("%w: float for %q", ErrTruncated, s.attrs[i].Name)
			}
			t.nums[ni] = int64(binary.BigEndian.Uint64(data[off:]))
			ni++
			off += 8
		case String:
			l, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return 0, fmt.Errorf("%w: string length for %q", ErrTruncated, s.attrs[i].Name)
			}
			// Reject lengths that cannot index a slice before converting,
			// so a hostile length never wraps around or over-slices.
			if l > uint64(math.MaxInt) || uint64(len(data)-off-n) < l {
				return 0, fmt.Errorf("%w: string of %d bytes for %q exceeds input", ErrTruncated, l, s.attrs[i].Name)
			}
			off += n
			t.strs[si] = string(data[off : off+int(l)])
			si++
			off += int(l)
		case Bool:
			if len(data)-off < 1 {
				return 0, fmt.Errorf("%w: bool for %q", ErrTruncated, s.attrs[i].Name)
			}
			if data[off] != 0 {
				t.nums[ni] = 1
			} else {
				t.nums[ni] = 0
			}
			ni++
			off++
		}
	}
	return off, nil
}
