package tuple

import (
	"testing"
	"time"
)

// mixedSchema is the realistic hop-path shape: strings, a float, an int,
// and a timestamp (TickSchema plus a timestamp).
var mixedSchema = MustSchema(
	Attribute{"sym", String},
	Attribute{"price", Float},
	Attribute{"seq", Int},
	Attribute{"at", Timestamp},
)

func mixedTuple() Tuple {
	return Build(mixedSchema).
		Str("sym", "IBM").Float("price", 101.25).Int("seq", 12345).
		Time("at", time.Unix(0, 1345999999123456789).UTC()).Done()
}

// BenchmarkEncodeMixed measures steady-state encoding of a mixed
// int/string/timestamp tuple into a reused buffer (the transport's frame
// path); it should not allocate.
func BenchmarkEncodeMixed(b *testing.B) {
	tp := mixedTuple()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], tp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeInto measures steady-state decoding into a reused tuple;
// only the string attribute allocates (its bytes are copied out of the
// frame so retaining a decoded string is safe).
func BenchmarkDecodeInto(b *testing.B) {
	tp := mixedTuple()
	buf, err := Encode(nil, tp)
	if err != nil {
		b.Fatal(err)
	}
	out := New(mixedSchema)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&out, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeIntoInts is DecodeInto over a fixed-width-only schema:
// the zero-allocation floor of the hop path.
func BenchmarkDecodeIntoInts(b *testing.B) {
	s := MustSchema(Attribute{"a", Int}, Attribute{"b", Int}, Attribute{"c", Float}, Attribute{"d", Timestamp})
	tp := New(s)
	_ = tp.SetInt("a", 1)
	_ = tp.SetInt("b", -99)
	_ = tp.SetFloat("c", 2.5)
	_ = tp.SetTime("d", time.Unix(0, 1345999999123456789).UTC())
	buf, err := Encode(nil, tp)
	if err != nil {
		b.Fatal(err)
	}
	out := New(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&out, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldRefAccess compares compiled-ref reads against the
// name-based compatibility layer on the same tuple.
func BenchmarkFieldRefAccess(b *testing.B) {
	tp := mixedTuple()
	price := mixedSchema.MustRef("price")
	seq := mixedSchema.MustRef("seq")
	sym := mixedSchema.MustRef("sym")
	b.ReportAllocs()
	var f float64
	var n int64
	var l int
	for i := 0; i < b.N; i++ {
		f += price.Float(tp)
		n += seq.Int(tp)
		l += len(sym.Str(tp))
	}
	sinkF, sinkI, sinkL = f, n, l
}

// BenchmarkNameAccess is the same reads through per-call name lookups.
func BenchmarkNameAccess(b *testing.B) {
	tp := mixedTuple()
	b.ReportAllocs()
	var f float64
	var n int64
	var l int
	for i := 0; i < b.N; i++ {
		f += tp.Float("price")
		n += tp.Int("seq")
		l += len(tp.String("sym"))
	}
	sinkF, sinkI, sinkL = f, n, l
}

var (
	sinkF float64
	sinkI int64
	sinkL int
)
