package tuple

import (
	"errors"
	"testing"
	"time"
)

// fuzzSchema mixes every wire shape: varints, fixed-width, length-prefixed.
var fuzzSchema = MustSchema(
	Attribute{"id", Int},
	Attribute{"price", Float},
	Attribute{"sym", String},
	Attribute{"live", Bool},
	Attribute{"at", Timestamp},
	Attribute{"note", String},
)

// FuzzEncodeDecode drives the codec from both ends: structured values must
// round-trip exactly, and arbitrary bytes must never panic, over-read, or
// decode without accounting for every byte consumed.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(int64(0), 0.0, "", false, int64(0), "", []byte(nil))
	f.Add(int64(-123456789), 3.14, "hello", true, int64(1345999999123456789), "world", []byte{0x80})
	f.Add(int64(1)<<62, -1e300, "\x00\xff", true, int64(-1), string(make([]byte, 300)), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, id int64, price float64, sym string, live bool, nanos int64, note string, raw []byte) {
		// Property 1: value round-trip through Encode/DecodeInto.
		in := New(fuzzSchema)
		_ = in.SetInt("id", id)
		_ = in.SetFloat("price", price)
		_ = in.SetString("sym", sym)
		_ = in.SetBool("live", live)
		_ = in.SetTime("at", time.Unix(0, nanos).UTC())
		_ = in.SetString("note", note)
		buf, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if len(buf) != EncodedSize(in) {
			t.Fatalf("EncodedSize %d != encoded %d", EncodedSize(in), len(buf))
		}
		out := New(fuzzSchema)
		n, err := DecodeInto(&out, buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d", n, len(buf))
		}
		sameFloat := out.Float("price") == price || (price != price && out.Float("price") != out.Float("price"))
		if out.Int("id") != id || !sameFloat || out.String("sym") != sym ||
			out.Bool("live") != live || !out.Time("at").Equal(in.Time("at")) ||
			out.String("note") != note {
			t.Fatalf("round trip mismatch: %s vs %s", out.Format(), in.Format())
		}

		// Property 2: arbitrary input never panics; failures are typed; a
		// success consumes no more than the input.
		got, used, err := Decode(fuzzSchema, raw)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("decode error not ErrTruncated: %v", err)
			}
			return
		}
		if used > len(raw) {
			t.Fatalf("decode consumed %d of %d input bytes", used, len(raw))
		}
		// A successful decode re-encodes to something decodable (varint
		// paddings may shrink, so only re-decode, not byte-compare).
		re, err := Encode(nil, got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, _, err := Decode(fuzzSchema, re); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}

// TestDecodeRejectsOverlongString covers the hostile-length guard: a
// declared string length larger than the input (or than int) must fail
// with ErrTruncated instead of slicing out of range.
func TestDecodeRejectsOverlongString(t *testing.T) {
	s := MustSchema(Attribute{"s", String})
	cases := [][]byte{
		{0x05},      // declares 5 bytes, provides none
		{0x05, 'a'}, // declares 5 bytes, provides one
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // ~MaxUint64
	}
	for _, data := range cases {
		if _, _, err := Decode(s, data); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Decode(%x) = %v, want ErrTruncated", data, err)
		}
	}
}
