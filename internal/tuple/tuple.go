// Package tuple defines the data items flowing through stream connections:
// typed schemas, tuples, punctuation marks, and a binary codec used by the
// inter-PE transport (which is also where the platform's byte-count metrics
// come from).
//
// # Columnar storage layout
//
// Tuples are unboxed: a Schema compiles, at construction time, every
// attribute to a fixed slot in one of two typed arrays, and a Tuple is just
// those arrays plus the schema pointer:
//
//	nums []int64   Int (value), Float (IEEE-754 bits), Bool (0/1),
//	               Timestamp (unix-nanos; math.MinInt64 = the zero time)
//	strs []string  String
//
// No attribute value is ever stored behind an interface, so building,
// copying, encoding, and decoding a tuple of fixed-width attributes does
// not allocate per attribute. Timestamps carry nanosecond precision over
// the unix-nano range (years 1678–2262); the zero time round-trips exactly
// via the sentinel.
//
// # FieldRef resolution contract
//
// Name-based accessors (Int, SetFloat, ...) look the attribute up by name
// on every call and re-check its type; they are the compatibility layer.
// Hot paths resolve a FieldRef once at setup time — Schema.Ref /
// Schema.TypedRef validate the name and type at resolution — and then use
// the ref's unchecked accessors per tuple. A FieldRef is only meaningful
// for tuples of the schema that resolved it; using it with another schema,
// or using an accessor of the wrong type class, is a programming error
// (the accessors perform no per-call checks, that is the point).
package tuple

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Type enumerates attribute types supported by the platform.
type Type uint8

// Supported attribute types.
const (
	Int Type = iota + 1
	Float
	String
	Bool
	Timestamp
)

// String returns the SPL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int64"
	case Float:
		return "float64"
	case String:
		return "rstring"
	case Bool:
		return "boolean"
	case Timestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

func (t Type) valid() bool { return t >= Int && t <= Timestamp }

// Attribute is a named, typed slot in a schema.
type Attribute struct {
	Name string `json:"name"`
	Type Type   `json:"type"`
}

// zeroTimeNanos is the nums-slot sentinel for the zero time.Time, which
// has no meaningful unix-nano representation.
const zeroTimeNanos = math.MinInt64

// Schema is an ordered set of uniquely named attributes. Construction
// compiles each attribute to a slot offset in the tuple's typed storage
// (see the package comment), so per-tuple access never re-derives layout.
// Schemas are immutable after construction and safe to share between
// goroutines.
type Schema struct {
	attrs []Attribute
	index map[string]int
	slot  []int // per attribute: offset into nums or strs
	nNums int
	nStrs int
	// tsSlots lists the nums offsets holding timestamps, so New can plant
	// the zero-time sentinel without rescanning the attribute list.
	tsSlots []int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique, non-empty, and every type must be valid.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
		slot:  make([]int, len(attrs)),
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("tuple: attribute %d has an empty name", i)
		}
		if !a.Type.valid() {
			return nil, fmt.Errorf("tuple: attribute %q has invalid type %d", a.Name, a.Type)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate attribute name %q", a.Name)
		}
		s.index[a.Name] = i
		switch a.Type {
		case String:
			s.slot[i] = s.nStrs
			s.nStrs++
		default: // Int, Float, Bool, Timestamp
			s.slot[i] = s.nNums
			if a.Type == Timestamp {
				s.tsSlots = append(s.tsSlots, s.nNums)
			}
			s.nNums++
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas in application builders and tests.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Equal reports whether two schemas have identical attribute sequences.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "<int64 id, rstring text>".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Type, a.Name)
	}
	b.WriteByte('>')
	return b.String()
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// FieldRef is a compiled reference to one attribute of one schema: the
// result of resolving an attribute name (and checking its type) once at
// setup time. Its accessors index straight into the tuple's typed storage
// with no name lookup and no per-call type check — see the package comment
// for the resolution contract. The zero FieldRef is invalid.
type FieldRef struct {
	slot int
	typ  Type
}

// Ref resolves the named attribute to a FieldRef carrying its type, or an
// error when the schema has no such attribute.
func (s *Schema) Ref(name string) (FieldRef, error) {
	i := s.Index(name)
	if i < 0 {
		return FieldRef{}, fmt.Errorf("tuple: no attribute %q in %s", name, s)
	}
	return FieldRef{slot: s.slot[i], typ: s.attrs[i].Type}, nil
}

// TypedRef resolves the named attribute and verifies it has the wanted
// type, so the ref's unchecked accessors of that type class are safe.
func (s *Schema) TypedRef(name string, want Type) (FieldRef, error) {
	i := s.Index(name)
	if i < 0 {
		return FieldRef{}, fmt.Errorf("tuple: no attribute %q in %s", name, s)
	}
	if got := s.attrs[i].Type; got != want {
		return FieldRef{}, fmt.Errorf("tuple: attribute %q is %s, not %s", name, got, want)
	}
	return FieldRef{slot: s.slot[i], typ: want}, nil
}

// MustRef is Ref that panics on error; for statically known attributes.
func (s *Schema) MustRef(name string) FieldRef {
	r, err := s.Ref(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Valid reports whether the ref was resolved (the zero FieldRef is not).
func (r FieldRef) Valid() bool { return r.typ.valid() }

// Type returns the referenced attribute's type.
func (r FieldRef) Type() Type { return r.typ }

// Int reads the referenced int64 attribute.
func (r FieldRef) Int(t Tuple) int64 { return t.nums[r.slot] }

// Float reads the referenced float64 attribute.
func (r FieldRef) Float(t Tuple) float64 { return math.Float64frombits(uint64(t.nums[r.slot])) }

// Str reads the referenced string attribute.
func (r FieldRef) Str(t Tuple) string { return t.strs[r.slot] }

// Bool reads the referenced bool attribute.
func (r FieldRef) Bool(t Tuple) bool { return t.nums[r.slot] != 0 }

// Time reads the referenced timestamp attribute.
func (r FieldRef) Time(t Tuple) time.Time { return timeFromNanos(t.nums[r.slot]) }

// SetInt stores an int64 through the ref.
func (r FieldRef) SetInt(t Tuple, v int64) { t.nums[r.slot] = v }

// SetFloat stores a float64 through the ref.
func (r FieldRef) SetFloat(t Tuple, v float64) { t.nums[r.slot] = int64(math.Float64bits(v)) }

// SetStr stores a string through the ref.
func (r FieldRef) SetStr(t Tuple, v string) { t.strs[r.slot] = v }

// SetBool stores a bool through the ref.
func (r FieldRef) SetBool(t Tuple, v bool) {
	if v {
		t.nums[r.slot] = 1
	} else {
		t.nums[r.slot] = 0
	}
}

// SetTime stores a timestamp through the ref.
func (r FieldRef) SetTime(t Tuple, v time.Time) { t.nums[r.slot] = nanosFromTime(v) }

func timeFromNanos(n int64) time.Time {
	if n == zeroTimeNanos {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

func nanosFromTime(v time.Time) int64 {
	if v.IsZero() {
		return zeroTimeNanos
	}
	return v.UnixNano()
}

// Tuple is a single data item conforming to a schema, stored unboxed in
// two typed arrays (see the package comment). The zero Tuple is invalid;
// construct with New. Tuples are not safe for concurrent mutation; Clone
// before sharing. Tuples decoded from a transport frame share one backing
// allocation per frame (NewBlock); retaining one pins its frame, so
// long-lived holders should Clone.
type Tuple struct {
	schema *Schema
	nums   []int64
	strs   []string
}

// New returns a zero-valued tuple of the given schema.
func New(s *Schema) Tuple {
	t := Tuple{schema: s}
	if s.nNums > 0 {
		t.nums = make([]int64, s.nNums)
		for _, k := range s.tsSlots {
			t.nums[k] = zeroTimeNanos
		}
	}
	if s.nStrs > 0 {
		t.strs = make([]string, s.nStrs)
	}
	return t
}

// NewBlock returns count zero-valued tuples of the schema sharing one
// backing allocation per typed array — the frame arena the transport
// decodes batches into, so per-tuple storage costs amortise to near zero.
// The tuples are independent (non-overlapping slots) but all pin the same
// blocks for the garbage collector.
func NewBlock(s *Schema, count int) []Tuple {
	if count <= 0 {
		return nil
	}
	ts := make([]Tuple, count)
	var nums []int64
	if s.nNums > 0 {
		nums = make([]int64, count*s.nNums)
	}
	var strs []string
	if s.nStrs > 0 {
		strs = make([]string, count*s.nStrs)
	}
	for i := range ts {
		ts[i].schema = s
		if s.nNums > 0 {
			ts[i].nums = nums[i*s.nNums : (i+1)*s.nNums : (i+1)*s.nNums]
			for _, k := range s.tsSlots {
				ts[i].nums[k] = zeroTimeNanos
			}
		}
		if s.nStrs > 0 {
			ts[i].strs = strs[i*s.nStrs : (i+1)*s.nStrs : (i+1)*s.nStrs]
		}
	}
	return ts
}

// Schema returns the tuple's schema.
func (t Tuple) Schema() *Schema { return t.schema }

// Valid reports whether the tuple was properly constructed.
func (t Tuple) Valid() bool { return t.schema != nil }

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := Tuple{schema: t.schema}
	if len(t.nums) > 0 {
		out.nums = append(make([]int64, 0, len(t.nums)), t.nums...)
	}
	if len(t.strs) > 0 {
		out.strs = append(make([]string, 0, len(t.strs)), t.strs...)
	}
	return out
}

// slotOf resolves a name to its storage slot, enforcing the wanted type;
// the error-reporting core of the name-based compatibility layer.
func (t Tuple) slotOf(name string, want Type) (int, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return -1, fmt.Errorf("tuple: no attribute %q in %s", name, t.schema)
	}
	if got := t.schema.attrs[i].Type; got != want {
		return -1, fmt.Errorf("tuple: attribute %q is %s, not %s", name, got, want)
	}
	return t.schema.slot[i], nil
}

// Index-based accessors: i is the attribute index in schema order, mapped
// through the schema's compiled slot table. The caller is responsible for
// matching the accessor to Attr(i).Type (no per-call type check); note
// that IntAt on a Timestamp attribute reads the raw unix-nanos.

// IntAt reads the i-th attribute as int64.
func (t Tuple) IntAt(i int) int64 { return t.nums[t.schema.slot[i]] }

// FloatAt reads the i-th attribute as float64.
func (t Tuple) FloatAt(i int) float64 { return math.Float64frombits(uint64(t.nums[t.schema.slot[i]])) }

// StringAt reads the i-th attribute as string.
func (t Tuple) StringAt(i int) string { return t.strs[t.schema.slot[i]] }

// BoolAt reads the i-th attribute as bool.
func (t Tuple) BoolAt(i int) bool { return t.nums[t.schema.slot[i]] != 0 }

// TimeAt reads the i-th attribute as a timestamp.
func (t Tuple) TimeAt(i int) time.Time { return timeFromNanos(t.nums[t.schema.slot[i]]) }

// SetIntAt stores an int64 into the i-th attribute.
func (t Tuple) SetIntAt(i int, v int64) { t.nums[t.schema.slot[i]] = v }

// SetFloatAt stores a float64 into the i-th attribute.
func (t Tuple) SetFloatAt(i int, v float64) { t.nums[t.schema.slot[i]] = int64(math.Float64bits(v)) }

// SetStringAt stores a string into the i-th attribute.
func (t Tuple) SetStringAt(i int, v string) { t.strs[t.schema.slot[i]] = v }

// SetBoolAt stores a bool into the i-th attribute.
func (t Tuple) SetBoolAt(i int, v bool) {
	if v {
		t.nums[t.schema.slot[i]] = 1
	} else {
		t.nums[t.schema.slot[i]] = 0
	}
}

// SetTimeAt stores a timestamp into the i-th attribute.
func (t Tuple) SetTimeAt(i int, v time.Time) { t.nums[t.schema.slot[i]] = nanosFromTime(v) }

// SetInt stores an int64 attribute.
func (t Tuple) SetInt(name string, v int64) error {
	k, err := t.slotOf(name, Int)
	if err != nil {
		return err
	}
	t.nums[k] = v
	return nil
}

// SetFloat stores a float64 attribute.
func (t Tuple) SetFloat(name string, v float64) error {
	k, err := t.slotOf(name, Float)
	if err != nil {
		return err
	}
	t.nums[k] = int64(math.Float64bits(v))
	return nil
}

// SetString stores a string attribute.
func (t Tuple) SetString(name, v string) error {
	k, err := t.slotOf(name, String)
	if err != nil {
		return err
	}
	t.strs[k] = v
	return nil
}

// SetBool stores a bool attribute.
func (t Tuple) SetBool(name string, v bool) error {
	k, err := t.slotOf(name, Bool)
	if err != nil {
		return err
	}
	if v {
		t.nums[k] = 1
	} else {
		t.nums[k] = 0
	}
	return nil
}

// SetTime stores a timestamp attribute.
func (t Tuple) SetTime(name string, v time.Time) error {
	k, err := t.slotOf(name, Timestamp)
	if err != nil {
		return err
	}
	t.nums[k] = nanosFromTime(v)
	return nil
}

// Int reads an int64 attribute, returning 0 if missing or mistyped.
func (t Tuple) Int(name string) int64 {
	if k, err := t.slotOf(name, Int); err == nil {
		return t.nums[k]
	}
	return 0
}

// Float reads a float64 attribute, returning 0 if missing or mistyped.
func (t Tuple) Float(name string) float64 {
	if k, err := t.slotOf(name, Float); err == nil {
		return math.Float64frombits(uint64(t.nums[k]))
	}
	return 0
}

// String reads a string attribute, returning "" if missing or mistyped.
func (t Tuple) String(name string) string {
	if k, err := t.slotOf(name, String); err == nil {
		return t.strs[k]
	}
	return ""
}

// Bool reads a bool attribute, returning false if missing or mistyped.
func (t Tuple) Bool(name string) bool {
	if k, err := t.slotOf(name, Bool); err == nil {
		return t.nums[k] != 0
	}
	return false
}

// Time reads a timestamp attribute, returning the zero time if missing or
// mistyped.
func (t Tuple) Time(name string) time.Time {
	if k, err := t.slotOf(name, Timestamp); err == nil {
		return timeFromNanos(t.nums[k])
	}
	return time.Time{}
}

// Format renders the tuple for logs and sinks as {a=1, b="x"}.
func (t Tuple) Format() string {
	if !t.Valid() {
		return "{invalid}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range t.schema.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		switch a.Type {
		case Int:
			fmt.Fprintf(&b, "%s=%d", a.Name, t.IntAt(i))
		case Float:
			fmt.Fprintf(&b, "%s=%v", a.Name, t.FloatAt(i))
		case String:
			fmt.Fprintf(&b, "%s=%q", a.Name, t.StringAt(i))
		case Bool:
			fmt.Fprintf(&b, "%s=%v", a.Name, t.BoolAt(i))
		case Timestamp:
			fmt.Fprintf(&b, "%s=%s", a.Name, t.TimeAt(i).UTC().Format(time.RFC3339Nano))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Builder provides chained tuple construction:
//
//	t := tuple.Build(schema).Int("id", 7).Str("text", "hi").Done()
type Builder struct {
	t   Tuple
	err error
}

// Build starts a builder for schema s.
func Build(s *Schema) *Builder { return &Builder{t: New(s)} }

// Int sets an int64 attribute.
func (b *Builder) Int(name string, v int64) *Builder {
	if b.err == nil {
		b.err = b.t.SetInt(name, v)
	}
	return b
}

// Float sets a float64 attribute.
func (b *Builder) Float(name string, v float64) *Builder {
	if b.err == nil {
		b.err = b.t.SetFloat(name, v)
	}
	return b
}

// Str sets a string attribute.
func (b *Builder) Str(name, v string) *Builder {
	if b.err == nil {
		b.err = b.t.SetString(name, v)
	}
	return b
}

// Bool sets a bool attribute.
func (b *Builder) Bool(name string, v bool) *Builder {
	if b.err == nil {
		b.err = b.t.SetBool(name, v)
	}
	return b
}

// Time sets a timestamp attribute.
func (b *Builder) Time(name string, v time.Time) *Builder {
	if b.err == nil {
		b.err = b.t.SetTime(name, v)
	}
	return b
}

// Done returns the built tuple, panicking if any set failed. Builders are
// used with statically known schemas where a mismatch is a programming
// error.
func (b *Builder) Done() Tuple {
	if b.err != nil {
		panic(b.err)
	}
	return b.t
}

// Mark is a punctuation delivered in-band on a stream.
type Mark uint8

// Punctuation kinds. FinalMark indicates the producing port will never emit
// another tuple; its propagation is managed by the PE runtime and surfaces
// as the nFinalPunctsQueued built-in metric on sink ports.
const (
	NoMark Mark = iota
	WindowMark
	FinalMark
)

// String names the mark.
func (m Mark) String() string {
	switch m {
	case NoMark:
		return "none"
	case WindowMark:
		return "window"
	case FinalMark:
		return "final"
	default:
		return fmt.Sprintf("Mark(%d)", uint8(m))
	}
}

// SortAttributes orders attributes by name; used by tools that need a
// canonical rendering of schemas.
func SortAttributes(attrs []Attribute) {
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
}
