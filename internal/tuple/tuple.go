// Package tuple defines the data items flowing through stream connections:
// typed schemas, tuples, punctuation marks, and a binary codec used by the
// inter-PE transport (which is also where the platform's byte-count metrics
// come from).
package tuple

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Type enumerates attribute types supported by the platform.
type Type uint8

// Supported attribute types.
const (
	Int Type = iota + 1
	Float
	String
	Bool
	Timestamp
)

// String returns the SPL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int64"
	case Float:
		return "float64"
	case String:
		return "rstring"
	case Bool:
		return "boolean"
	case Timestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

func (t Type) valid() bool { return t >= Int && t <= Timestamp }

// Attribute is a named, typed slot in a schema.
type Attribute struct {
	Name string `json:"name"`
	Type Type   `json:"type"`
}

// Schema is an ordered set of uniquely named attributes. Schemas are
// immutable after construction and safe to share between goroutines.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique, non-empty, and every type must be valid.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("tuple: attribute %d has an empty name", i)
		}
		if !a.Type.valid() {
			return nil, fmt.Errorf("tuple: attribute %q has invalid type %d", a.Name, a.Type)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate attribute name %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas in application builders and tests.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Equal reports whether two schemas have identical attribute sequences.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "<int64 id, rstring text>".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Type, a.Name)
	}
	b.WriteByte('>')
	return b.String()
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Tuple is a single data item conforming to a schema. The zero Tuple is
// invalid; construct with New. Tuples are not safe for concurrent
// mutation; Clone before sharing.
type Tuple struct {
	schema *Schema
	vals   []any
}

// New returns a zero-valued tuple of the given schema.
func New(s *Schema) Tuple {
	vals := make([]any, s.NumAttrs())
	for i := range vals {
		switch s.Attr(i).Type {
		case Int:
			vals[i] = int64(0)
		case Float:
			vals[i] = float64(0)
		case String:
			vals[i] = ""
		case Bool:
			vals[i] = false
		case Timestamp:
			vals[i] = time.Time{}
		}
	}
	return Tuple{schema: s, vals: vals}
}

// Schema returns the tuple's schema.
func (t Tuple) Schema() *Schema { return t.schema }

// Valid reports whether the tuple was properly constructed.
func (t Tuple) Valid() bool { return t.schema != nil }

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	vals := make([]any, len(t.vals))
	copy(vals, t.vals)
	return Tuple{schema: t.schema, vals: vals}
}

func (t Tuple) slot(name string, want Type) (int, error) {
	i := t.schema.Index(name)
	if i < 0 {
		return -1, fmt.Errorf("tuple: no attribute %q in %s", name, t.schema)
	}
	if got := t.schema.Attr(i).Type; got != want {
		return -1, fmt.Errorf("tuple: attribute %q is %s, not %s", name, got, want)
	}
	return i, nil
}

// SetInt stores an int64 attribute.
func (t Tuple) SetInt(name string, v int64) error {
	i, err := t.slot(name, Int)
	if err != nil {
		return err
	}
	t.vals[i] = v
	return nil
}

// SetFloat stores a float64 attribute.
func (t Tuple) SetFloat(name string, v float64) error {
	i, err := t.slot(name, Float)
	if err != nil {
		return err
	}
	t.vals[i] = v
	return nil
}

// SetString stores a string attribute.
func (t Tuple) SetString(name, v string) error {
	i, err := t.slot(name, String)
	if err != nil {
		return err
	}
	t.vals[i] = v
	return nil
}

// SetBool stores a bool attribute.
func (t Tuple) SetBool(name string, v bool) error {
	i, err := t.slot(name, Bool)
	if err != nil {
		return err
	}
	t.vals[i] = v
	return nil
}

// SetTime stores a timestamp attribute.
func (t Tuple) SetTime(name string, v time.Time) error {
	i, err := t.slot(name, Timestamp)
	if err != nil {
		return err
	}
	t.vals[i] = v
	return nil
}

// Int reads an int64 attribute, returning 0 if missing or mistyped.
func (t Tuple) Int(name string) int64 {
	if i, err := t.slot(name, Int); err == nil {
		return t.vals[i].(int64)
	}
	return 0
}

// Float reads a float64 attribute, returning 0 if missing or mistyped.
func (t Tuple) Float(name string) float64 {
	if i, err := t.slot(name, Float); err == nil {
		return t.vals[i].(float64)
	}
	return 0
}

// String reads a string attribute, returning "" if missing or mistyped.
func (t Tuple) String(name string) string {
	if i, err := t.slot(name, String); err == nil {
		return t.vals[i].(string)
	}
	return ""
}

// Bool reads a bool attribute, returning false if missing or mistyped.
func (t Tuple) Bool(name string) bool {
	if i, err := t.slot(name, Bool); err == nil {
		return t.vals[i].(bool)
	}
	return false
}

// Time reads a timestamp attribute, returning the zero time if missing or
// mistyped.
func (t Tuple) Time(name string) time.Time {
	if i, err := t.slot(name, Timestamp); err == nil {
		return t.vals[i].(time.Time)
	}
	return time.Time{}
}

// Format renders the tuple for logs and sinks as {a=1, b="x"}.
func (t Tuple) Format() string {
	if !t.Valid() {
		return "{invalid}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range t.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		a := t.schema.Attr(i)
		switch a.Type {
		case String:
			fmt.Fprintf(&b, "%s=%q", a.Name, t.vals[i])
		case Timestamp:
			fmt.Fprintf(&b, "%s=%s", a.Name, t.vals[i].(time.Time).UTC().Format(time.RFC3339Nano))
		default:
			fmt.Fprintf(&b, "%s=%v", a.Name, t.vals[i])
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Builder provides chained tuple construction:
//
//	t := tuple.Build(schema).Int("id", 7).Str("text", "hi").Done()
type Builder struct {
	t   Tuple
	err error
}

// Build starts a builder for schema s.
func Build(s *Schema) *Builder { return &Builder{t: New(s)} }

// Int sets an int64 attribute.
func (b *Builder) Int(name string, v int64) *Builder {
	if b.err == nil {
		b.err = b.t.SetInt(name, v)
	}
	return b
}

// Float sets a float64 attribute.
func (b *Builder) Float(name string, v float64) *Builder {
	if b.err == nil {
		b.err = b.t.SetFloat(name, v)
	}
	return b
}

// Str sets a string attribute.
func (b *Builder) Str(name, v string) *Builder {
	if b.err == nil {
		b.err = b.t.SetString(name, v)
	}
	return b
}

// Bool sets a bool attribute.
func (b *Builder) Bool(name string, v bool) *Builder {
	if b.err == nil {
		b.err = b.t.SetBool(name, v)
	}
	return b
}

// Time sets a timestamp attribute.
func (b *Builder) Time(name string, v time.Time) *Builder {
	if b.err == nil {
		b.err = b.t.SetTime(name, v)
	}
	return b
}

// Done returns the built tuple, panicking if any set failed. Builders are
// used with statically known schemas where a mismatch is a programming
// error.
func (b *Builder) Done() Tuple {
	if b.err != nil {
		panic(b.err)
	}
	return b.t
}

// Mark is a punctuation delivered in-band on a stream.
type Mark uint8

// Punctuation kinds. FinalMark indicates the producing port will never emit
// another tuple; its propagation is managed by the PE runtime and surfaces
// as the nFinalPunctsQueued built-in metric on sink ports.
const (
	NoMark Mark = iota
	WindowMark
	FinalMark
)

// String names the mark.
func (m Mark) String() string {
	switch m {
	case NoMark:
		return "none"
	case WindowMark:
		return "window"
	case FinalMark:
		return "final"
	default:
		return fmt.Sprintf("Mark(%d)", uint8(m))
	}
}

// SortAttributes orders attributes by name; used by tools that need a
// canonical rendering of schemas.
func SortAttributes(attrs []Attribute) {
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
}
