package tuple

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Attribute{"id", Int},
		Attribute{"price", Float},
		Attribute{"sym", String},
		Attribute{"live", Bool},
		Attribute{"at", Timestamp},
	)
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema(Attribute{"a", Int}, Attribute{"a", Float}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	if _, err := NewSchema(Attribute{"", Int}); err == nil {
		t.Fatal("empty attribute name accepted")
	}
}

func TestNewSchemaRejectsInvalidType(t *testing.T) {
	if _, err := NewSchema(Attribute{"a", Type(99)}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestSchemaIndexAndAttr(t *testing.T) {
	s := testSchema(t)
	if s.NumAttrs() != 5 {
		t.Fatalf("NumAttrs = %d", s.NumAttrs())
	}
	if i := s.Index("sym"); i != 2 {
		t.Fatalf("Index(sym) = %d", i)
	}
	if i := s.Index("nope"); i != -1 {
		t.Fatalf("Index(nope) = %d", i)
	}
	if a := s.Attr(0); a.Name != "id" || a.Type != Int {
		t.Fatalf("Attr(0) = %+v", a)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Fatal("identical schemas not equal")
	}
	c := MustSchema(Attribute{"id", Int})
	if a.Equal(c) {
		t.Fatal("different schemas equal")
	}
	if a.Equal(nil) {
		t.Fatal("schema equal to nil")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Attribute{"id", Int}, Attribute{"text", String})
	want := "<int64 id, rstring text>"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTupleZeroValues(t *testing.T) {
	tp := New(testSchema(t))
	if tp.Int("id") != 0 || tp.Float("price") != 0 || tp.String("sym") != "" || tp.Bool("live") || !tp.Time("at").IsZero() {
		t.Fatalf("non-zero defaults: %s", tp.Format())
	}
}

func TestTupleSetGetRoundTrip(t *testing.T) {
	tp := New(testSchema(t))
	at := time.Date(2012, 8, 27, 10, 0, 0, 0, time.UTC)
	if err := tp.SetInt("id", 42); err != nil {
		t.Fatal(err)
	}
	if err := tp.SetFloat("price", 99.5); err != nil {
		t.Fatal(err)
	}
	if err := tp.SetString("sym", "IBM"); err != nil {
		t.Fatal(err)
	}
	if err := tp.SetBool("live", true); err != nil {
		t.Fatal(err)
	}
	if err := tp.SetTime("at", at); err != nil {
		t.Fatal(err)
	}
	if tp.Int("id") != 42 || tp.Float("price") != 99.5 || tp.String("sym") != "IBM" || !tp.Bool("live") || !tp.Time("at").Equal(at) {
		t.Fatalf("round trip failed: %s", tp.Format())
	}
}

func TestTupleTypeMismatchErrors(t *testing.T) {
	tp := New(testSchema(t))
	if err := tp.SetInt("price", 1); err == nil {
		t.Fatal("SetInt on float attribute succeeded")
	}
	if err := tp.SetString("id", "x"); err == nil {
		t.Fatal("SetString on int attribute succeeded")
	}
	if err := tp.SetBool("nope", true); err == nil {
		t.Fatal("Set on missing attribute succeeded")
	}
}

func TestTupleGettersTolerateMismatch(t *testing.T) {
	tp := New(testSchema(t))
	if tp.Int("price") != 0 || tp.String("id") != "" || tp.Float("nope") != 0 {
		t.Fatal("mistyped getters did not return zero values")
	}
}

func TestTupleClone(t *testing.T) {
	tp := Build(testSchema(t)).Int("id", 1).Done()
	cl := tp.Clone()
	if err := cl.SetInt("id", 2); err != nil {
		t.Fatal(err)
	}
	if tp.Int("id") != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBuilderPanicsOnBadAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Done() did not panic on builder error")
		}
	}()
	Build(testSchema(t)).Int("missing", 1).Done()
}

func TestTupleFormat(t *testing.T) {
	tp := Build(MustSchema(Attribute{"id", Int}, Attribute{"s", String})).
		Int("id", 7).Str("s", "hi").Done()
	got := tp.Format()
	if !strings.Contains(got, "id=7") || !strings.Contains(got, `s="hi"`) {
		t.Fatalf("Format() = %q", got)
	}
	var invalid Tuple
	if invalid.Format() != "{invalid}" {
		t.Fatalf("invalid Format() = %q", invalid.Format())
	}
}

func TestMarkString(t *testing.T) {
	for m, want := range map[Mark]string{NoMark: "none", WindowMark: "window", FinalMark: "final"} {
		if m.String() != want {
			t.Fatalf("Mark(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	tp := Build(s).
		Int("id", -123456789).
		Float("price", 3.14159).
		Str("sym", "hello world").
		Bool("live", true).
		Time("at", time.Unix(0, 1345999999123456789).UTC()).
		Done()
	buf, err := Encode(nil, tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedSize(tp) {
		t.Fatalf("EncodedSize = %d, len(Encode) = %d", EncodedSize(tp), len(buf))
	}
	got, n, err := Decode(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(buf))
	}
	if got.Int("id") != tp.Int("id") || got.Float("price") != tp.Float("price") ||
		got.String("sym") != tp.String("sym") || got.Bool("live") != tp.Bool("live") ||
		!got.Time("at").Equal(tp.Time("at")) {
		t.Fatalf("round trip mismatch: %s vs %s", got.Format(), tp.Format())
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := testSchema(t)
	tp := New(s)
	buf, err := Encode(nil, tp)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(s, buf[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestEncodeInvalidTuple(t *testing.T) {
	var invalid Tuple
	if _, err := Encode(nil, invalid); err == nil {
		t.Fatal("Encode(invalid) succeeded")
	}
	if EncodedSize(invalid) != 0 {
		t.Fatal("EncodedSize(invalid) != 0")
	}
}

// TestCodecPropertyRoundTrip drives random values through the codec.
func TestCodecPropertyRoundTrip(t *testing.T) {
	s := MustSchema(
		Attribute{"i", Int},
		Attribute{"f", Float},
		Attribute{"s", String},
		Attribute{"b", Bool},
	)
	f := func(i int64, fl float64, str string, b bool) bool {
		tp := New(s)
		_ = tp.SetInt("i", i)
		_ = tp.SetFloat("f", fl)
		_ = tp.SetString("s", str)
		_ = tp.SetBool("b", b)
		buf, err := Encode(nil, tp)
		if err != nil {
			return false
		}
		if len(buf) != EncodedSize(tp) {
			return false
		}
		got, n, err := Decode(s, buf)
		if err != nil || n != len(buf) {
			return false
		}
		// NaN compares unequal to itself; encode bits instead.
		ff := got.Float("f") == fl || (fl != fl && got.Float("f") != got.Float("f"))
		return got.Int("i") == i && ff && got.String("s") == str && got.Bool("b") == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortAttributes(t *testing.T) {
	attrs := []Attribute{{"z", Int}, {"a", Float}, {"m", Bool}}
	SortAttributes(attrs)
	if attrs[0].Name != "a" || attrs[1].Name != "m" || attrs[2].Name != "z" {
		t.Fatalf("SortAttributes order: %+v", attrs)
	}
}

func BenchmarkEncode(b *testing.B) {
	s := MustSchema(Attribute{"id", Int}, Attribute{"price", Float}, Attribute{"sym", String})
	tp := Build(s).Int("id", 12345).Float("price", 101.25).Str("sym", "IBM").Done()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = Encode(buf, tp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	s := MustSchema(Attribute{"id", Int}, Attribute{"price", Float}, Attribute{"sym", String})
	tp := Build(s).Int("id", 12345).Float("price", 101.25).Str("sym", "IBM").Done()
	buf, err := Encode(nil, tp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(s, buf); err != nil {
			b.Fatal(err)
		}
	}
}
