// Package vclock provides a virtual clock abstraction so that every
// time-dependent component of the system (metric collection intervals,
// dependency uptime requirements, garbage-collection timeouts, sliding
// windows) can run against either the real wall clock or a deterministic
// manual clock driven by tests and experiments.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout the platform and the
// orchestrator. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run in its own goroutine after d. The
	// returned timer can cancel the call before it fires.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker that delivers the clock's time every d.
	NewTicker(d time.Duration) Ticker
}

// Timer is a cancellable pending call created by AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was prevented
	// from firing.
	Stop() bool
}

// Ticker delivers periodic time events until stopped.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop shuts down the ticker. It does not close the channel.
	Stop()
}

// Real returns a Clock backed by the runtime wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

func (realClock) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(d)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// Manual is a deterministic clock advanced explicitly by tests. Goroutines
// blocked in Sleep/After only resume when Advance moves the clock past
// their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	pending timerHeap
	seq     int64
	waiters int // goroutines currently blocked on this clock
	waitCh  chan struct{}
}

// NewManual returns a Manual clock positioned at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start, waitCh: make(chan struct{})}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.mu.Lock()
	m.addWaiterLocked()
	m.scheduleLocked(m.now.Add(d), func(t time.Time) {
		ch <- t
		m.dropWaiter()
	}, false, 0)
	m.mu.Unlock()
	return ch
}

// AfterFunc implements Clock. Unlike time.AfterFunc, on a Manual clock f
// runs synchronously on the goroutine calling Advance, which makes timer
// ordering deterministic for tests; f must not block on further clock
// advancement.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scheduleLocked(m.now.Add(d), func(time.Time) { f() }, false, 0)
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker interval")
	}
	t := &manualTicker{m: m, ch: make(chan time.Time, 1), period: d}
	m.mu.Lock()
	t.entry = m.scheduleLocked(m.now.Add(d), t.fire, true, d)
	m.mu.Unlock()
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the interval, in deadline order. Callbacks run without the
// clock lock held.
func (m *Manual) Advance(d time.Duration) {
	m.AdvanceTo(m.Now().Add(d))
}

// AdvanceTo moves the clock to target, firing due timers in order. Moving
// backwards is a no-op.
func (m *Manual) AdvanceTo(target time.Time) {
	for {
		m.mu.Lock()
		if len(m.pending) == 0 || m.pending[0].when.After(target) {
			if target.After(m.now) {
				m.now = target
			}
			m.mu.Unlock()
			return
		}
		e := heap.Pop(&m.pending).(*timerEntry)
		if e.stopped {
			m.mu.Unlock()
			continue
		}
		if e.when.After(m.now) {
			m.now = e.when
		}
		if e.periodic {
			e.when = e.when.Add(e.period)
			e.stopped = false
			heap.Push(&m.pending, e)
		}
		fn, at := e.fn, m.now
		m.mu.Unlock()
		fn(at)
	}
}

// Waiters reports how many goroutines are blocked in Sleep or After on
// this clock. Tests use it to synchronise before advancing.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waiters
}

// BlockUntilWaiters blocks until at least n goroutines are waiting on the
// clock. It is intended for tests that must advance the clock only after a
// component has gone to sleep.
func (m *Manual) BlockUntilWaiters(n int) {
	for {
		m.mu.Lock()
		if m.waiters >= n {
			m.mu.Unlock()
			return
		}
		ch := m.waitCh
		m.mu.Unlock()
		<-ch
	}
}

func (m *Manual) addWaiterLocked() {
	m.waiters++
	close(m.waitCh)
	m.waitCh = make(chan struct{})
}

func (m *Manual) dropWaiter() {
	m.mu.Lock()
	m.waiters--
	m.mu.Unlock()
}

func (m *Manual) scheduleLocked(when time.Time, fn func(time.Time), periodic bool, period time.Duration) *timerEntry {
	m.seq++
	e := &timerEntry{m: m, when: when, seq: m.seq, fn: fn, periodic: periodic, period: period}
	heap.Push(&m.pending, e)
	return e
}

type timerEntry struct {
	m        *Manual
	when     time.Time
	seq      int64
	fn       func(time.Time)
	periodic bool
	period   time.Duration
	stopped  bool
	index    int
}

// Stop implements Timer.
func (e *timerEntry) Stop() bool {
	e.m.mu.Lock()
	defer e.m.mu.Unlock()
	was := e.stopped
	e.stopped = true
	return !was
}

type manualTicker struct {
	m      *Manual
	ch     chan time.Time
	period time.Duration
	entry  *timerEntry
}

func (t *manualTicker) C() <-chan time.Time { return t.ch }
func (t *manualTicker) Stop()               { t.entry.Stop() }

// fire delivers a tick, dropping it if the consumer has not drained the
// previous one — matching time.Ticker semantics.
func (t *manualTicker) fire(at time.Time) {
	select {
	case t.ch <- at:
	default:
	}
}

type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	e := x.(*timerEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
