package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2012, 8, 27, 0, 0, 0, 0, time.UTC)

func TestManualNow(t *testing.T) {
	m := NewManual(epoch)
	if got := m.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	m.Advance(5 * time.Second)
	if got := m.Now(); !got.Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("Now() after advance = %v", got)
	}
}

func TestManualAdvanceBackwardsIsNoop(t *testing.T) {
	m := NewManual(epoch)
	m.AdvanceTo(epoch.Add(-time.Hour))
	if got := m.Now(); !got.Equal(epoch) {
		t.Fatalf("clock moved backwards to %v", got)
	}
}

func TestManualAfterFiresAtDeadline(t *testing.T) {
	m := NewManual(epoch)
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before the clock advanced")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(epoch.Add(10 * time.Second)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestManualTimersFireInDeadlineOrder(t *testing.T) {
	m := NewManual(epoch)
	var mu sync.Mutex
	var order []int
	record := func(id int) func() {
		return func() {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}
	}
	m.AfterFunc(3*time.Second, record(3))
	m.AfterFunc(1*time.Second, record(1))
	m.AfterFunc(2*time.Second, record(2))
	m.Advance(5 * time.Second)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("timers fired out of order: %v", order)
	}
}

func TestManualAfterFuncStop(t *testing.T) {
	m := NewManual(epoch)
	var fired atomic.Bool
	tm := m.AfterFunc(time.Second, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop() = false for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	m.Advance(2 * time.Second)
	time.Sleep(10 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	m := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		m.Sleep(time.Minute)
		close(done)
	}()
	m.BlockUntilWaiters(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before advance")
	default:
	}
	m.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after advance")
	}
}

func TestManualSleepZeroReturnsImmediately(t *testing.T) {
	m := NewManual(epoch)
	m.Sleep(0)
	m.Sleep(-time.Second)
}

func TestManualTicker(t *testing.T) {
	m := NewManual(epoch)
	tk := m.NewTicker(10 * time.Second)
	m.Advance(10 * time.Second)
	select {
	case at := <-tk.C():
		if !at.Equal(epoch.Add(10 * time.Second)) {
			t.Fatalf("first tick at %v", at)
		}
	default:
		t.Fatal("no tick after one period")
	}
	// An undrained ticker drops ticks rather than queueing them.
	m.Advance(30 * time.Second)
	<-tk.C()
	select {
	case <-tk.C():
		t.Fatal("ticker queued more than one tick")
	default:
	}
	tk.Stop()
	m.Advance(time.Minute)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker delivered a tick")
	default:
	}
}

func TestManualTickerPanicsOnNonPositivePeriod(t *testing.T) {
	m := NewManual(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	m.NewTicker(0)
}

func TestManualWaitersCount(t *testing.T) {
	m := NewManual(epoch)
	for i := 0; i < 3; i++ {
		go m.Sleep(time.Hour)
	}
	m.BlockUntilWaiters(3)
	if got := m.Waiters(); got != 3 {
		t.Fatalf("Waiters() = %d, want 3", got)
	}
	m.Advance(time.Hour)
	waitFor(t, func() bool { return m.Waiters() == 0 })
}

func TestManualAdvanceToFiresIntermediatePeriodicTicks(t *testing.T) {
	m := NewManual(epoch)
	var ticks atomic.Int64
	tk := &countingTicker{n: &ticks}
	_ = tk
	// Use AfterFunc chains to count periodic behaviour through a ticker.
	ticker := m.NewTicker(time.Second)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			<-ticker.C()
			ticks.Add(1)
			// Simulate a consumer that drains promptly. Each drain lets
			// the next tick in.
		}
		close(done)
	}()
	for i := 0; i < 3; i++ {
		m.Advance(time.Second)
		waitFor(t, func() bool { return ticks.Load() == int64(i+1) })
	}
	<-done
}

type countingTicker struct{ n *atomic.Int64 }

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := time.Now()
	if c.Now().Before(before.Add(-time.Second)) {
		t.Fatal("real clock far behind wall clock")
	}
	var fired atomic.Bool
	tm := c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	defer tm.Stop()
	waitFor(t, fired.Load)
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("real After never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker never ticked")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
