// Package workload provides the seeded synthetic data generators that
// substitute for the paper's proprietary feeds (Twitter's 10% sample,
// MySpace, stock market data, social profiles). The orchestrator reacts
// to metric trajectories, not raw payloads, so each generator is built to
// reproduce exactly the trajectory its experiment needs: a cause
// distribution that shifts mid-stream (Figure 8), a steady random-walk
// price series (Figure 9), and profile-attribute discovery at known rates
// (Figure 10). All generators are deterministic for a given seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Tweet is one synthetic microblog post about a product.
type Tweet struct {
	User     string
	Text     string
	Product  string
	Negative bool
	Cause    string // complaint cause; empty for positive tweets
}

// TweetConfig parameterises a TweetGen.
type TweetConfig struct {
	Seed    int64
	Product string
	// NegativeRatio is the fraction of tweets with negative sentiment.
	NegativeRatio float64
	// Causes is the complaint-cause vocabulary before the shift.
	Causes []string
	// ShiftAt is the tweet index at which the cause mix changes; 0
	// disables the shift.
	ShiftAt int
	// CausesAfter is the vocabulary after the shift (the "antenna issue"
	// moment of §5.1).
	CausesAfter []string
}

// TweetGen produces a deterministic tweet stream.
type TweetGen struct {
	cfg TweetConfig
	rng *rand.Rand
	n   int
}

// NewTweetGen builds a generator; sensible defaults apply for omitted
// fields.
func NewTweetGen(cfg TweetConfig) *TweetGen {
	if cfg.Product == "" {
		cfg.Product = "phone"
	}
	if cfg.NegativeRatio <= 0 || cfg.NegativeRatio > 1 {
		cfg.NegativeRatio = 0.8
	}
	if len(cfg.Causes) == 0 {
		cfg.Causes = []string{"flash", "screen"}
	}
	return &TweetGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next returns the next tweet.
func (g *TweetGen) Next() Tweet {
	i := g.n
	g.n++
	causes := g.cfg.Causes
	if g.cfg.ShiftAt > 0 && i >= g.cfg.ShiftAt && len(g.cfg.CausesAfter) > 0 {
		causes = g.cfg.CausesAfter
	}
	t := Tweet{
		User:    fmt.Sprintf("user%04d", g.rng.Intn(1000)),
		Product: g.cfg.Product,
	}
	if g.rng.Float64() < g.cfg.NegativeRatio {
		t.Negative = true
		t.Cause = causes[g.rng.Intn(len(causes))]
		t.Text = fmt.Sprintf("I hate my %s because of the %s", t.Product, t.Cause)
	} else {
		t.Text = fmt.Sprintf("I love my %s", t.Product)
	}
	return t
}

// Count returns how many tweets have been generated.
func (g *TweetGen) Count() int { return g.n }

// Tick is one synthetic stock trade.
type Tick struct {
	Symbol string
	Price  float64
	Seq    int64
}

// TickConfig parameterises a TickGen.
type TickConfig struct {
	Seed    int64
	Symbols []string
	// Start is the initial price for every symbol (default 100).
	Start float64
	// Step bounds the absolute per-tick random-walk move (default 1).
	Step float64
}

// TickGen produces a deterministic random-walk price stream, round-robin
// across symbols.
type TickGen struct {
	cfg    TickConfig
	rng    *rand.Rand
	prices map[string]float64
	next   int
	seq    int64
}

// NewTickGen builds a tick generator.
func NewTickGen(cfg TickConfig) *TickGen {
	if len(cfg.Symbols) == 0 {
		cfg.Symbols = []string{"IBM"}
	}
	if cfg.Start <= 0 {
		cfg.Start = 100
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	g := &TickGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), prices: make(map[string]float64)}
	for _, s := range cfg.Symbols {
		g.prices[s] = cfg.Start
	}
	return g
}

// Next returns the next tick.
func (g *TickGen) Next() Tick {
	sym := g.cfg.Symbols[g.next%len(g.cfg.Symbols)]
	g.next++
	p := g.prices[sym] + (g.rng.Float64()*2-1)*g.cfg.Step
	if p < 1 {
		p = 1
	}
	g.prices[sym] = p
	g.seq++
	return Tick{Symbol: sym, Price: p, Seq: g.seq}
}

// Profile is one synthetic social-media user profile.
type Profile struct {
	User     string
	Source   string
	Negative bool
	HasAge   bool
	HasGen   bool
	HasLoc   bool
}

// ProfileConfig parameterises a ProfileGen.
type ProfileConfig struct {
	Seed   int64
	Source string // e.g. "twitter", "myspace"
	// PAge/PGender/PLocation are the probabilities a profile carries each
	// attribute (defaults 0.5).
	PAge      float64
	PGender   float64
	PLocation float64
}

// ProfileGen produces deterministic profiles.
type ProfileGen struct {
	cfg ProfileConfig
	rng *rand.Rand
	n   int
}

// NewProfileGen builds a profile generator.
func NewProfileGen(cfg ProfileConfig) *ProfileGen {
	if cfg.Source == "" {
		cfg.Source = "twitter"
	}
	if cfg.PAge == 0 {
		cfg.PAge = 0.5
	}
	if cfg.PGender == 0 {
		cfg.PGender = 0.5
	}
	if cfg.PLocation == 0 {
		cfg.PLocation = 0.5
	}
	return &ProfileGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next returns the next profile. User names overlap across sources (the
// duplicates §5.3 mentions), which the profile data store deduplicates.
func (g *ProfileGen) Next() Profile {
	g.n++
	return Profile{
		User:     fmt.Sprintf("user%05d", g.rng.Intn(20000)),
		Source:   g.cfg.Source,
		Negative: g.rng.Float64() < 0.7,
		HasAge:   g.rng.Float64() < g.cfg.PAge,
		HasGen:   g.rng.Float64() < g.cfg.PGender,
		HasLoc:   g.rng.Float64() < g.cfg.PLocation,
	}
}

// KeyConfig parameterises a KeyGen.
type KeyConfig struct {
	Seed int64
	// N is the key-space size (default 100000).
	N int
	// Skew is the Zipf exponent s: key rank r (1-based) is drawn with
	// probability proportional to r^-s. 0 means uniform; social-media
	// user activity sits around 1.0–1.2. Unlike math/rand's Zipf, any
	// s >= 0 is valid. Negative values are treated as 0.
	Skew float64
	// Prefix names the keys: Prefix + zero-padded rank (default "user").
	Prefix string
}

// KeyGen draws Zipf-skewed keys for load generation: rank 0 is the
// hottest key, so hot partitions emerge naturally when the keys are
// hash-routed. Sampling inverts the precomputed CDF with a binary
// search, deterministic for a fixed seed.
type KeyGen struct {
	cfg KeyConfig
	rng *rand.Rand
	cdf []float64
}

// NewKeyGen builds a key generator; defaults apply for omitted fields.
func NewKeyGen(cfg KeyConfig) *KeyGen {
	if cfg.N <= 0 {
		cfg.N = 100000
	}
	if cfg.Skew < 0 {
		cfg.Skew = 0
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "user"
	}
	cdf := make([]float64, cfg.N)
	var total float64
	for i := 0; i < cfg.N; i++ {
		total += math.Pow(float64(i+1), -cfg.Skew)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[cfg.N-1] = 1 // guard against accumulated rounding
	return &KeyGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), cdf: cdf}
}

// NextIndex draws the next key's rank in [0, N); rank 0 is hottest.
func (g *KeyGen) NextIndex() int {
	return sort.SearchFloat64s(g.cdf, g.rng.Float64())
}

// Next draws the next key name.
func (g *KeyGen) Next() string {
	return fmt.Sprintf("%s%06d", g.cfg.Prefix, g.NextIndex())
}

// N returns the key-space size after defaulting.
func (g *KeyGen) N() int { return g.cfg.N }

// TopShare returns the expected traffic share of the ceil(frac*N)
// hottest keys — the analytic mass tests and reports compare measured
// concentration against.
func (g *KeyGen) TopShare(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(g.cfg.N)))
	if k >= g.cfg.N {
		return 1
	}
	return g.cdf[k-1]
}
