package workload

import "testing"

func TestTweetGenDeterministic(t *testing.T) {
	a := NewTweetGen(TweetConfig{Seed: 7})
	b := NewTweetGen(TweetConfig{Seed: 7})
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at tweet %d", i)
		}
	}
	if a.Count() != 100 {
		t.Fatalf("Count = %d", a.Count())
	}
}

func TestTweetGenShiftChangesCauses(t *testing.T) {
	g := NewTweetGen(TweetConfig{
		Seed: 1, NegativeRatio: 1,
		Causes: []string{"flash", "screen"}, ShiftAt: 50, CausesAfter: []string{"antenna"},
	})
	before := map[string]int{}
	for i := 0; i < 50; i++ {
		before[g.Next().Cause]++
	}
	if before["antenna"] != 0 || before["flash"]+before["screen"] != 50 {
		t.Fatalf("pre-shift causes: %v", before)
	}
	after := map[string]int{}
	for i := 0; i < 50; i++ {
		after[g.Next().Cause]++
	}
	if after["antenna"] != 50 {
		t.Fatalf("post-shift causes: %v", after)
	}
}

func TestTweetGenSentimentMix(t *testing.T) {
	g := NewTweetGen(TweetConfig{Seed: 3, NegativeRatio: 0.5})
	neg := 0
	for i := 0; i < 1000; i++ {
		tw := g.Next()
		if tw.Negative {
			neg++
			if tw.Cause == "" {
				t.Fatal("negative tweet without a cause")
			}
		} else if tw.Cause != "" {
			t.Fatal("positive tweet with a cause")
		}
	}
	if neg < 400 || neg > 600 {
		t.Fatalf("negative ratio off: %d/1000", neg)
	}
}

func TestTickGenRandomWalk(t *testing.T) {
	g := NewTickGen(TickConfig{Seed: 5, Symbols: []string{"IBM", "AAPL"}, Start: 100, Step: 1})
	last := map[string]float64{"IBM": 100, "AAPL": 100}
	for i := 0; i < 200; i++ {
		tk := g.Next()
		if tk.Symbol != "IBM" && tk.Symbol != "AAPL" {
			t.Fatalf("symbol %q", tk.Symbol)
		}
		d := tk.Price - last[tk.Symbol]
		if d > 1.0001 || d < -1.0001 {
			t.Fatalf("step too large: %f", d)
		}
		last[tk.Symbol] = tk.Price
		if tk.Seq != int64(i+1) {
			t.Fatalf("seq = %d at %d", tk.Seq, i)
		}
	}
}

func TestTickGenDeterministic(t *testing.T) {
	a := NewTickGen(TickConfig{Seed: 11})
	b := NewTickGen(TickConfig{Seed: 11})
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestTickGenPriceFloor(t *testing.T) {
	g := NewTickGen(TickConfig{Seed: 1, Start: 1.5, Step: 10})
	for i := 0; i < 100; i++ {
		if g.Next().Price < 1 {
			t.Fatal("price fell below floor")
		}
	}
}

func TestProfileGenAttributesRoughlyMatchProbabilities(t *testing.T) {
	g := NewProfileGen(ProfileConfig{Seed: 9, Source: "myspace", PAge: 0.9, PGender: 0.1, PLocation: 0.5})
	var age, gen, loc int
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if p.Source != "myspace" {
			t.Fatalf("source %q", p.Source)
		}
		if p.HasAge {
			age++
		}
		if p.HasGen {
			gen++
		}
		if p.HasLoc {
			loc++
		}
	}
	if age < 850 || gen > 150 || loc < 400 || loc > 600 {
		t.Fatalf("attribute rates: age=%d gen=%d loc=%d", age, gen, loc)
	}
}

func TestProfileGenUsersOverlap(t *testing.T) {
	g := NewProfileGen(ProfileConfig{Seed: 2})
	seen := map[string]bool{}
	dups := 0
	for i := 0; i < 5000; i++ {
		u := g.Next().User
		if seen[u] {
			dups++
		}
		seen[u] = true
	}
	if dups == 0 {
		t.Fatal("no duplicate users: dedup path never exercised")
	}
}
