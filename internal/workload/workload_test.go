package workload

import (
	"math"
	"testing"
)

func TestTweetGenDeterministic(t *testing.T) {
	a := NewTweetGen(TweetConfig{Seed: 7})
	b := NewTweetGen(TweetConfig{Seed: 7})
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at tweet %d", i)
		}
	}
	if a.Count() != 100 {
		t.Fatalf("Count = %d", a.Count())
	}
}

func TestTweetGenShiftChangesCauses(t *testing.T) {
	g := NewTweetGen(TweetConfig{
		Seed: 1, NegativeRatio: 1,
		Causes: []string{"flash", "screen"}, ShiftAt: 50, CausesAfter: []string{"antenna"},
	})
	before := map[string]int{}
	for i := 0; i < 50; i++ {
		before[g.Next().Cause]++
	}
	if before["antenna"] != 0 || before["flash"]+before["screen"] != 50 {
		t.Fatalf("pre-shift causes: %v", before)
	}
	after := map[string]int{}
	for i := 0; i < 50; i++ {
		after[g.Next().Cause]++
	}
	if after["antenna"] != 50 {
		t.Fatalf("post-shift causes: %v", after)
	}
}

func TestTweetGenSentimentMix(t *testing.T) {
	g := NewTweetGen(TweetConfig{Seed: 3, NegativeRatio: 0.5})
	neg := 0
	for i := 0; i < 1000; i++ {
		tw := g.Next()
		if tw.Negative {
			neg++
			if tw.Cause == "" {
				t.Fatal("negative tweet without a cause")
			}
		} else if tw.Cause != "" {
			t.Fatal("positive tweet with a cause")
		}
	}
	if neg < 400 || neg > 600 {
		t.Fatalf("negative ratio off: %d/1000", neg)
	}
}

func TestTickGenRandomWalk(t *testing.T) {
	g := NewTickGen(TickConfig{Seed: 5, Symbols: []string{"IBM", "AAPL"}, Start: 100, Step: 1})
	last := map[string]float64{"IBM": 100, "AAPL": 100}
	for i := 0; i < 200; i++ {
		tk := g.Next()
		if tk.Symbol != "IBM" && tk.Symbol != "AAPL" {
			t.Fatalf("symbol %q", tk.Symbol)
		}
		d := tk.Price - last[tk.Symbol]
		if d > 1.0001 || d < -1.0001 {
			t.Fatalf("step too large: %f", d)
		}
		last[tk.Symbol] = tk.Price
		if tk.Seq != int64(i+1) {
			t.Fatalf("seq = %d at %d", tk.Seq, i)
		}
	}
}

func TestTickGenDeterministic(t *testing.T) {
	a := NewTickGen(TickConfig{Seed: 11})
	b := NewTickGen(TickConfig{Seed: 11})
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestTickGenPriceFloor(t *testing.T) {
	g := NewTickGen(TickConfig{Seed: 1, Start: 1.5, Step: 10})
	for i := 0; i < 100; i++ {
		if g.Next().Price < 1 {
			t.Fatal("price fell below floor")
		}
	}
}

func TestProfileGenAttributesRoughlyMatchProbabilities(t *testing.T) {
	g := NewProfileGen(ProfileConfig{Seed: 9, Source: "myspace", PAge: 0.9, PGender: 0.1, PLocation: 0.5})
	var age, gen, loc int
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if p.Source != "myspace" {
			t.Fatalf("source %q", p.Source)
		}
		if p.HasAge {
			age++
		}
		if p.HasGen {
			gen++
		}
		if p.HasLoc {
			loc++
		}
	}
	if age < 850 || gen > 150 || loc < 400 || loc > 600 {
		t.Fatalf("attribute rates: age=%d gen=%d loc=%d", age, gen, loc)
	}
}

func TestProfileGenUsersOverlap(t *testing.T) {
	g := NewProfileGen(ProfileConfig{Seed: 2})
	seen := map[string]bool{}
	dups := 0
	for i := 0; i < 5000; i++ {
		u := g.Next().User
		if seen[u] {
			dups++
		}
		seen[u] = true
	}
	if dups == 0 {
		t.Fatal("no duplicate users: dedup path never exercised")
	}
}

func TestKeyGenDeterministic(t *testing.T) {
	a := NewKeyGen(KeyConfig{Seed: 7, N: 5000, Skew: 1.1})
	b := NewKeyGen(KeyConfig{Seed: 7, N: 5000, Skew: 1.1})
	for i := 0; i < 2000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d: %q != %q for one seed", i, ka, kb)
		}
	}
}

// TestKeyGenSkewMatchesExponent fits the measured rank-frequency curve:
// for Zipf(s), log(count) against log(rank) is a line of slope -s. The
// fit uses the hottest 30 ranks, where counts are large enough that
// sampling noise stays inside the tolerance.
func TestKeyGenSkewMatchesExponent(t *testing.T) {
	const (
		s     = 1.2
		n     = 500
		draws = 300000
		ranks = 30
	)
	g := NewKeyGen(KeyConfig{Seed: 11, N: n, Skew: s})
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.NextIndex()]++
	}
	// Least-squares slope of log(count) on log(rank).
	var sx, sy, sxx, sxy float64
	for r := 0; r < ranks; r++ {
		if counts[r] == 0 {
			t.Fatalf("rank %d never drawn in %d draws", r, draws)
		}
		x := math.Log(float64(r + 1))
		y := math.Log(float64(counts[r]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (float64(ranks)*sxy - sx*sy) / (float64(ranks)*sxx - sx*sx)
	if math.Abs(slope+s) > 0.15 {
		t.Fatalf("fitted exponent %.3f, want %.1f +/- 0.15", -slope, s)
	}
}

// TestKeyGenHotKeyConcentration pins the top-1% traffic share against
// the generator's own analytic expectation and against uniformity: the
// hottest 1% of a skewed key space must carry far more than 1% of the
// traffic, and the measured share must match TopShare.
func TestKeyGenHotKeyConcentration(t *testing.T) {
	const (
		n     = 1000
		draws = 200000
	)
	g := NewKeyGen(KeyConfig{Seed: 3, N: n, Skew: 1.1})
	hot := int(math.Ceil(0.01 * n))
	var inHot int
	for i := 0; i < draws; i++ {
		if g.NextIndex() < hot {
			inHot++
		}
	}
	measured := float64(inHot) / draws
	want := g.TopShare(0.01)
	if want < 0.25 {
		t.Fatalf("expected mass %.3f implausibly low for s=1.1", want)
	}
	if math.Abs(measured-want) > 0.02 {
		t.Fatalf("top-1%% share %.3f, want %.3f +/- 0.02", measured, want)
	}
	if measured < 10*0.01 {
		t.Fatalf("top-1%% share %.3f not clearly above the uniform 1%%", measured)
	}
}

// TestKeyGenUniformWhenUnskewed: s=0 degenerates to uniform draws, and
// TopShare reports the uniform mass.
func TestKeyGenUniformWhenUnskewed(t *testing.T) {
	g := NewKeyGen(KeyConfig{Seed: 5, N: 200, Skew: 0})
	if got := g.TopShare(0.1); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("uniform TopShare(0.1) = %.4f, want 0.1", got)
	}
	counts := make([]int, 200)
	for i := 0; i < 100000; i++ {
		counts[g.NextIndex()]++
	}
	for r, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("rank %d drawn %d times; uniform expectation 500", r, c)
		}
	}
}

func TestKeyGenDefaults(t *testing.T) {
	g := NewKeyGen(KeyConfig{Seed: 1})
	if g.N() != 100000 {
		t.Fatalf("default N = %d, want 100000", g.N())
	}
	if k := g.Next(); len(k) != len("user")+6 || k[:4] != "user" {
		t.Fatalf("default key %q not user-prefixed and padded", k)
	}
	if got := g.TopShare(2); got != 1 {
		t.Fatalf("TopShare(>1) = %v, want 1", got)
	}
}
