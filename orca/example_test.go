package orca_test

import (
	"fmt"

	"streamorca/orca"
)

// Example_widthActuation is the guard composition behind elastic
// fission: a Threshold anchors every ingress-rate observation (limit
// -1 — rates are never negative, so the threshold only filters out
// invalid observations), and a Debounce demands two consecutive
// overloaded readings before the widen actuation fires, so a one-pull
// spike never resizes the region. In a real routine the inner handler
// calls act.ResizeRegion and the gate is subscribed with OnPEMetric to
// the region's split PE; here it is driven with synthetic observations
// so the composition's behaviour is visible in isolation.
func Example_widthActuation() {
	const overloadedAbove = 1000 // tuples/sec the region handles at its current width

	width := 1
	widen := func(ctx *orca.PEMetricContext, _ *orca.Actions) error {
		width++ // a routine would call act.ResizeRegion(job, region, width)
		fmt.Printf("resize to width %d at ingress %d tuples/sec\n", width, ctx.Value)
		return nil
	}

	gate := orca.Threshold(
		func(ctx *orca.PEMetricContext) (float64, bool) { return float64(ctx.Value), true },
		-1,
		orca.Debounce(2,
			func(ctx *orca.PEMetricContext) bool { return ctx.Value > overloadedAbove },
			widen))

	for _, rate := range []int64{900, 1400, 500, 1600, 1700, 1800, 1900} {
		_ = gate(&orca.PEMetricContext{Metric: "ingestRatePerSec", Value: rate}, nil)
	}
	// The 1400 spike is ridden out (the healthy 500 resets the streak);
	// the sustained overload from 1600 on widens twice.

	// Output:
	// resize to width 2 at ingress 1700 tuples/sec
	// resize to width 3 at ingress 1900 tuples/sec
}
