// Package orca is the public API of the orchestrator — the paper's
// contribution. Write ORCA logic by embedding orca.Base and overriding
// the handlers of interest, register event scopes in HandleOrcaStart, and
// actuate through the Service the handlers receive:
//
//	type myPolicy struct{ orca.Base }
//
//	func (p *myPolicy) HandleOrcaStart(svc *orca.Service, ctx *orca.OrcaStartContext) {
//	    scope := orca.NewPEFailureScope("failures").AddApplicationFilter("MyApp")
//	    svc.RegisterEventScope(scope)
//	    svc.SubmitApplication("MyApp", nil)
//	}
//
//	func (p *myPolicy) HandlePEFailure(svc *orca.Service, ctx *orca.PEFailureContext, scopes []string) {
//	    svc.RestartPE(ctx.PE)
//	}
//
// When the platform instance carries a checkpoint store
// (streams.InstanceOptions.Checkpoint), RestartPE is stateful: the
// restarted PE restores every checkpointed operator (aggregate
// windows, application counters) from its latest snapshot, and
// svc.CheckpointPE(pe) captures one on demand.
//
//	svc, _ := orca.NewService(orca.Config{Name: "my", SAM: inst.SAM, SRM: inst.SRM}, &myPolicy{})
//	svc.RegisterApplication(app)
//	svc.Start()
//
// The service delivers events one at a time, in arrival order, each with
// the keys of every registered subscope it matched and a context rich
// enough to disambiguate the application's logical and physical views
// (query further with svc.Graph, svc.OperatorsInPE, svc.PEOfOperator...).
package orca

import (
	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/graph"
)

// Orchestrator surface.
type (
	// Orchestrator is the ORCA-logic interface; embed Base for no-op
	// defaults.
	Orchestrator = core.Orchestrator
	// Base provides no-op defaults for every handler.
	Base = core.Base
	// Service is the ORCA service: event delivery, inspection, and
	// actuation.
	Service = core.Service
	// Config assembles a service.
	Config = core.Config
	// Stats exposes service counters.
	Stats = core.Stats
	// JobSummary identifies one managed job.
	JobSummary = core.JobSummary
)

// Event kinds and contexts.
type (
	// EventKind enumerates deliverable event types.
	EventKind = core.EventKind
	// OrcaStartContext accompanies the start notification.
	OrcaStartContext = core.OrcaStartContext
	// OperatorMetricContext describes an operator metric observation.
	OperatorMetricContext = core.OperatorMetricContext
	// PEMetricContext describes a PE metric observation.
	PEMetricContext = core.PEMetricContext
	// PortMetricContext describes a port metric observation.
	PortMetricContext = core.PortMetricContext
	// PEFailureContext describes a PE crash.
	PEFailureContext = core.PEFailureContext
	// HostFailureContext describes a host failure.
	HostFailureContext = core.HostFailureContext
	// JobContext accompanies job submission/cancellation events.
	JobContext = core.JobContext
	// TimerContext accompanies timer events.
	TimerContext = core.TimerContext
	// UserEventContext accompanies user-raised events.
	UserEventContext = core.UserEventContext
)

// Scopes.
type (
	// Scope is a registered subscope.
	Scope = core.Scope
	// OperatorMetricScope selects operator metric events.
	OperatorMetricScope = core.OperatorMetricScope
	// PEMetricScope selects PE metric events.
	PEMetricScope = core.PEMetricScope
	// PortMetricScope selects port metric events.
	PortMetricScope = core.PortMetricScope
	// PEFailureScope selects PE crash events.
	PEFailureScope = core.PEFailureScope
	// HostFailureScope selects host failure events.
	HostFailureScope = core.HostFailureScope
	// JobEventScope selects job submission/cancellation events.
	JobEventScope = core.JobEventScope
	// TimerScope selects timer events.
	TimerScope = core.TimerScope
	// UserEventScope selects user events.
	UserEventScope = core.UserEventScope
)

// Application sets and dependencies (§4.4).
type (
	// AppConfig is one application configuration for the dependency
	// manager.
	AppConfig = core.AppConfig
)

// Extensions beyond the paper's implementation.
type (
	// ActuationRecord is one journalled actuation (§7's reliable-delivery
	// extension: every actuation is tagged with the transaction id of the
	// event whose handler issued it).
	ActuationRecord = core.ActuationRecord
	// RepartitionOptions selects the fusion strategy for
	// Service.RepartitionApplication (§4.3's recompile extension). It is
	// the same type as streams.BuildOptions.
	RepartitionOptions = compiler.Options
)

// Fusion strategies for RepartitionOptions.
const (
	FuseByTag = compiler.FuseByTag
	FuseNone  = compiler.FuseNone
	FuseAll   = compiler.FuseAll
	FuseAuto  = compiler.FuseAuto
)

// Stream graph inspection.
type (
	// Graph is the in-memory stream graph of one managed job.
	Graph = graph.Graph
	// OperatorInfo describes one operator instance.
	OperatorInfo = graph.OperatorInfo
	// CompositeInfo describes one composite instance.
	CompositeInfo = graph.CompositeInfo
	// PEInfo describes one processing element.
	PEInfo = graph.PEInfo
)

// ErrUnmanagedJob is returned by actuations addressed to jobs this
// orchestrator did not start.
var ErrUnmanagedJob = core.ErrUnmanagedJob

// NewService builds an ORCA service around the given logic.
func NewService(cfg Config, logic Orchestrator) (*Service, error) {
	return core.NewService(cfg, logic)
}

// Scope constructors.
var (
	NewOperatorMetricScope = core.NewOperatorMetricScope
	NewPEMetricScope       = core.NewPEMetricScope
	NewPortMetricScope     = core.NewPortMetricScope
	NewPEFailureScope      = core.NewPEFailureScope
	NewHostFailureScope    = core.NewHostFailureScope
	NewJobEventScope       = core.NewJobEventScope
	NewTimerScope          = core.NewTimerScope
	NewUserEventScope      = core.NewUserEventScope
)

// Event kinds.
const (
	KindOrcaStart      = core.KindOrcaStart
	KindOperatorMetric = core.KindOperatorMetric
	KindPEMetric       = core.KindPEMetric
	KindPortMetric     = core.KindPortMetric
	KindPEFailure      = core.KindPEFailure
	KindHostFailure    = core.KindHostFailure
	KindJobSubmitted   = core.KindJobSubmitted
	KindJobCancelled   = core.KindJobCancelled
	KindTimer          = core.KindTimer
	KindUserEvent      = core.KindUserEvent
)

// DefaultPullInterval is the default SRM metric pull period (15 s, as in
// the paper).
const DefaultPullInterval = core.DefaultPullInterval
