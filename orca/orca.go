// Package orca is the public API of the orchestrator — the paper's
// contribution. Write ORCA logic as an adaptation Routine: pair each
// event scope with its typed handler in one expression, declare
// everything in a Setup that returns errors, and actuate through the
// Actions surface the handlers receive:
//
//	type myPolicy struct{}
//
//	func (p *myPolicy) Name() string { return "restart" }
//
//	func (p *myPolicy) Setup(sc *orca.SetupContext) error {
//	    if _, err := sc.Actions().SubmitApplication("MyApp", nil); err != nil {
//	        return err
//	    }
//	    return sc.Subscribe(orca.OnPEFailure(
//	        orca.NewPEFailureScope("failures").AddApplicationFilter("MyApp"),
//	        func(ctx *orca.PEFailureContext, act *orca.Actions) error {
//	            return act.RestartPE(ctx.PE)
//	        }))
//	}
//
//	svc, _ := orca.NewRoutineService(orca.Config{Name: "my", SAM: inst.SAM, SRM: inst.SRM}, &myPolicy{})
//	svc.RegisterApplication(app)
//	if err := svc.Start(); err != nil { ... } // setup errors surface here
//
// Cross-cutting activation logic composes from the guard combinators
// instead of bespoke mutex-and-timestamp code: Threshold/AtLeast gate a
// handler on an observed value, SuppressFor bounds re-trigger frequency,
// Debounce demands a sustained condition, and OncePerEpoch collapses one
// incident's event fan-out into a single actuation. Several independent
// routines run on one service via Compose (or by passing them all to
// NewRoutineService).
//
// When the platform instance carries a checkpoint store
// (streams.InstanceOptions.Checkpoint), RestartPE is stateful: the
// restarted PE restores every checkpointed operator (aggregate
// windows, application counters) from its latest snapshot, and
// act.CheckpointPE(pe) captures one on demand. Every PE also publishes
// a snapshot-age gauge (streams.MetricCheckpointAgeMs, -1 until its
// state is first anchored) through the ordinary PE-metric event path,
// so checkpoint-aware policies subscribe to it with OnPEMetric and
// compose the guards over it — e.g. Threshold over the observed age,
// debounced, re-checkpointing a replica whose snapshot went stale, and
// a failover that promotes the backup with the freshest snapshot
// instead of the paper's longest-uptime proxy.
//
// The service delivers events one at a time, in arrival order, each to
// the typed handler whose subscription matched, with a context rich
// enough to disambiguate the application's logical and physical views
// (query further with act.Graph, act.OperatorsInPE, act.PEOfOperator...).
//
// Routines that acquire resources release them through teardown hooks:
// implement the optional Closer interface or register a function with
// SetupContext.OnStop, and Service.Stop runs the hooks — actuation
// surface still live — before event delivery shuts down.
package orca

import (
	"time"

	"streamorca/internal/compiler"
	"streamorca/internal/core"
	"streamorca/internal/graph"
)

// Routine surface — the composable adaptation-routine API.
type (
	// Routine is the unit of adaptation logic: Name plus a Setup that
	// declares subscriptions and performs initial actuations, returning
	// errors that surface out of Service.Start.
	Routine = core.Routine
	// SetupContext registers a routine's subscriptions and exposes the
	// actuation surface during Setup.
	SetupContext = core.SetupContext
	// Subscription pairs one event scope with its typed handler; build
	// with the On* constructors.
	Subscription = core.Subscription
	// Closer is the optional Routine teardown extension: Close runs
	// during Service.Stop, before event delivery shuts down, with the
	// actuation surface still live. SetupContext.OnStop is the
	// function-style equivalent.
	Closer = core.Closer
	// Actions is the actuation and inspection surface routine handlers
	// receive; it embeds *Service.
	Actions = core.Actions
	// Service is the ORCA service: event delivery, inspection, and
	// actuation.
	Service = core.Service
	// Config assembles a service.
	Config = core.Config
	// Stats exposes service counters.
	Stats = core.Stats
	// JobSummary identifies one managed job.
	JobSummary = core.JobSummary
)

// Handler is a typed event handler: event context in, error out.
// Returning ErrSkipped reports "condition not met" — not an error, and
// guards treat the invocation as not having fired.
type Handler[C any] = core.Handler[C]

// ErrSkipped is the non-error sentinel handlers and guards return when
// the activation condition was not met.
var ErrSkipped = core.ErrSkipped

// Routine constructors and composition.
var (
	// NewRoutine builds a Routine from a name and a setup function.
	NewRoutine = core.NewRoutine
	// Compose bundles several routines into one.
	Compose = core.Compose
)

// Typed subscription constructors: each pairs a scope with its handler.
var (
	OnStart          = core.OnStart
	OnOperatorMetric = core.OnOperatorMetric
	OnPEMetric       = core.OnPEMetric
	OnPortMetric     = core.OnPortMetric
	OnPEFailure      = core.OnPEFailure
	OnHostFailure    = core.OnHostFailure
	OnJobEvent       = core.OnJobEvent
	OnTimer          = core.OnTimer
	OnUserEvent      = core.OnUserEvent
)

// NewRoutineService builds an ORCA service running the given adaptation
// routines; their Setups run inside Start and any error aborts it.
func NewRoutineService(cfg Config, routines ...Routine) (*Service, error) {
	return core.NewRoutineService(cfg, routines...)
}

// Guard combinators — reusable handler wrappers for cross-cutting
// activation logic. See the core package for the firing discipline:
// a guard records state only when its inner handler fired (returned
// nil); ErrSkipped and errors leave it untouched.

// Threshold invokes inner only when observe reports a valid value
// strictly above limit (§5.1's actuation-ratio pattern).
func Threshold[C any](observe func(*C) (float64, bool), limit float64, inner Handler[C]) Handler[C] {
	return core.Threshold(observe, limit, inner)
}

// AtLeast is the inclusive variant of Threshold (§5.3's accumulation
// trigger).
func AtLeast[C any](observe func(*C) (float64, bool), limit float64, inner Handler[C]) Handler[C] {
	return core.AtLeast(observe, limit, inner)
}

// SuppressFor skips re-invocations for d after inner fires (§5.1's
// 10-minute suppression window), measured on the service clock.
func SuppressFor[C any](d time.Duration, inner Handler[C]) Handler[C] {
	return core.SuppressFor(d, inner)
}

// Debounce invokes inner only once holds has been true for n consecutive
// deliveries.
func Debounce[C any](n int, holds func(*C) bool, inner Handler[C]) Handler[C] {
	return core.Debounce(n, holds, inner)
}

// OncePerEpoch fires inner at most once per event epoch, collapsing one
// incident's event fan-out (§4.2) into a single actuation.
func OncePerEpoch[C any](epoch func(*C) uint64, inner Handler[C]) Handler[C] {
	return core.OncePerEpoch(epoch, inner)
}

// Event kinds and contexts.
type (
	// EventKind enumerates deliverable event types.
	EventKind = core.EventKind
	// OrcaStartContext accompanies the start notification.
	OrcaStartContext = core.OrcaStartContext
	// OperatorMetricContext describes an operator metric observation.
	OperatorMetricContext = core.OperatorMetricContext
	// PEMetricContext describes a PE metric observation.
	PEMetricContext = core.PEMetricContext
	// PortMetricContext describes a port metric observation.
	PortMetricContext = core.PortMetricContext
	// PEFailureContext describes a PE crash.
	PEFailureContext = core.PEFailureContext
	// HostFailureContext describes a host failure.
	HostFailureContext = core.HostFailureContext
	// JobContext accompanies job submission/cancellation events.
	JobContext = core.JobContext
	// TimerContext accompanies timer events.
	TimerContext = core.TimerContext
	// UserEventContext accompanies user-raised events.
	UserEventContext = core.UserEventContext
)

// Scopes.
type (
	// Scope is a registered subscope.
	Scope = core.Scope
	// OperatorMetricScope selects operator metric events.
	OperatorMetricScope = core.OperatorMetricScope
	// PEMetricScope selects PE metric events.
	PEMetricScope = core.PEMetricScope
	// PortMetricScope selects port metric events.
	PortMetricScope = core.PortMetricScope
	// PEFailureScope selects PE crash events.
	PEFailureScope = core.PEFailureScope
	// HostFailureScope selects host failure events.
	HostFailureScope = core.HostFailureScope
	// JobEventScope selects job submission/cancellation events.
	JobEventScope = core.JobEventScope
	// TimerScope selects timer events.
	TimerScope = core.TimerScope
	// UserEventScope selects user events.
	UserEventScope = core.UserEventScope
)

// Application sets and dependencies (§4.4).
type (
	// AppConfig is one application configuration for the dependency
	// manager.
	AppConfig = core.AppConfig
)

// Extensions beyond the paper's implementation.
type (
	// ActuationRecord is one journalled actuation (§7's reliable-delivery
	// extension: every actuation is tagged with the transaction id of the
	// event whose handler issued it).
	ActuationRecord = core.ActuationRecord
	// RepartitionOptions selects the fusion strategy for
	// Service.RepartitionApplication (§4.3's recompile extension). It is
	// the same type as streams.BuildOptions.
	RepartitionOptions = compiler.Options
)

// Fusion strategies for RepartitionOptions.
const (
	FuseByTag = compiler.FuseByTag
	FuseNone  = compiler.FuseNone
	FuseAll   = compiler.FuseAll
	FuseAuto  = compiler.FuseAuto
)

// Stream graph inspection.
type (
	// Graph is the in-memory stream graph of one managed job.
	Graph = graph.Graph
	// OperatorInfo describes one operator instance.
	OperatorInfo = graph.OperatorInfo
	// CompositeInfo describes one composite instance.
	CompositeInfo = graph.CompositeInfo
	// PEInfo describes one processing element.
	PEInfo = graph.PEInfo
)

// ErrUnmanagedJob is returned by actuations addressed to jobs this
// orchestrator did not start.
var ErrUnmanagedJob = core.ErrUnmanagedJob

// Scope constructors.
var (
	NewOperatorMetricScope = core.NewOperatorMetricScope
	NewPEMetricScope       = core.NewPEMetricScope
	NewPortMetricScope     = core.NewPortMetricScope
	NewPEFailureScope      = core.NewPEFailureScope
	NewHostFailureScope    = core.NewHostFailureScope
	NewJobEventScope       = core.NewJobEventScope
	NewTimerScope          = core.NewTimerScope
	NewUserEventScope      = core.NewUserEventScope
)

// Event kinds.
const (
	KindOrcaStart      = core.KindOrcaStart
	KindOperatorMetric = core.KindOperatorMetric
	KindPEMetric       = core.KindPEMetric
	KindPortMetric     = core.KindPortMetric
	KindPEFailure      = core.KindPEFailure
	KindHostFailure    = core.KindHostFailure
	KindJobSubmitted   = core.KindJobSubmitted
	KindJobCancelled   = core.KindJobCancelled
	KindTimer          = core.KindTimer
	KindUserEvent      = core.KindUserEvent
)

// DefaultPullInterval is the default SRM metric pull period (15 s, as in
// the paper).
const DefaultPullInterval = core.DefaultPullInterval
