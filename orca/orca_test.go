package orca_test

import (
	"sync"
	"testing"
	"time"

	"streamorca/orca"
	"streamorca/streams"
)

// publicPolicy exercises the full public orchestration surface: typed
// subscriptions, timers, user events, actuation, inspection, and the
// dependency manager.
type publicPolicy struct {
	mu       sync.Mutex
	started  bool
	timers   int
	users    []string
	failures []orca.PEFailureContext
}

func (p *publicPolicy) Name() string { return "publicPolicy" }

func (p *publicPolicy) Setup(sc *orca.SetupContext) error {
	return sc.Subscribe(
		orca.OnStart(func(ctx *orca.OrcaStartContext, act *orca.Actions) error {
			p.mu.Lock()
			p.started = true
			p.mu.Unlock()
			return nil
		}),
		orca.OnTimer(orca.NewTimerScope("t"), func(ctx *orca.TimerContext, act *orca.Actions) error {
			p.mu.Lock()
			p.timers++
			p.mu.Unlock()
			return nil
		}),
		orca.OnUserEvent(orca.NewUserEventScope("u"), func(ctx *orca.UserEventContext, act *orca.Actions) error {
			p.mu.Lock()
			p.users = append(p.users, ctx.Name)
			p.mu.Unlock()
			return nil
		}),
		orca.OnPEFailure(orca.NewPEFailureScope("f").AddApplicationFilter("papp"),
			func(ctx *orca.PEFailureContext, act *orca.Actions) error {
				p.mu.Lock()
				p.failures = append(p.failures, *ctx)
				p.mu.Unlock()
				return act.RestartPE(ctx.PE)
			}),
	)
}

func noopRoutine() orca.Routine {
	return orca.NewRoutine("noop", func(*orca.SetupContext) error { return nil })
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPublicOrchestrationSurface(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("papp")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0").Param("period", "1ms")
	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "orca-public")
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		t.Fatal(err)
	}

	policy := &publicPolicy{}
	svc, err := orca.NewRoutineService(orca.Config{
		Name: "publicOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	waitFor(t, "start", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return policy.started
	})

	streams.Collector("orca-public").Reset()
	job, err := svc.SubmitApplication("papp", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flow", func() bool { return streams.Collector("orca-public").Len() > 3 })

	// Inspection through the facade.
	g, ok := svc.Graph(job)
	if !ok {
		t.Fatal("no graph")
	}
	pe, ok := g.PEOfOperator("sink")
	if !ok {
		t.Fatal("no sink PE")
	}
	if ops := svc.OperatorsInPE(pe); len(ops) != 1 || ops[0].Name != "sink" {
		t.Fatalf("OperatorsInPE = %+v", ops)
	}

	// Failure handling + actuation through the routine's handler.
	if err := svc.KillPE(pe, "public test"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure handled", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return len(policy.failures) == 1
	})
	policy.mu.Lock()
	f := policy.failures[0]
	policy.mu.Unlock()
	if f.PE != pe || f.App != "papp" || f.Reason != "public test" {
		t.Fatalf("failure ctx = %+v", f)
	}

	// Timers and user events.
	if err := svc.StartTimer("tick", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "timer", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return policy.timers == 1
	})
	svc.RaiseUserEvent("hello", map[string]string{"k": "v"})
	waitFor(t, "user event", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return len(policy.users) == 1 && policy.users[0] == "hello"
	})

	// ErrUnmanagedJob surfaces through the facade.
	if err := svc.CancelJob(99999); err != orca.ErrUnmanagedJob {
		t.Fatalf("CancelJob(unknown) = %v", err)
	}
	if st := svc.Stats(); st.ManagedJobs != 1 || st.Delivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPublicCloserRunsOnStop: the teardown surface works through the
// facade — a Closer routine cancels its job during Stop, while the
// actuation surface is still live.
func TestPublicCloserRunsOnStop(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("closeapp")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0").Param("period", "1ms")
	sink := b.AddOperator("sink", "CountSink").In(schema)
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseAll})
	if err != nil {
		t.Fatal(err)
	}

	submitAndTearDown := orca.NewRoutine("submitAndTearDown", func(sc *orca.SetupContext) error {
		if _, err := sc.Actions().SubmitApplication("closeapp", nil); err != nil {
			return err
		}
		sc.OnStop(func(act *orca.Actions) {
			for _, j := range act.ManagedJobs() {
				_ = act.CancelJob(j.Job)
			}
		})
		return nil
	})
	svc, err := orca.NewRoutineService(orca.Config{
		Name: "closerOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, submitAndTearDown)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if len(inst.SAM.Jobs()) != 1 {
		t.Fatalf("jobs after start = %+v", inst.SAM.Jobs())
	}
	svc.Stop()
	if left := inst.SAM.Jobs(); len(left) != 0 {
		t.Fatalf("stop hook did not cancel the job: %+v", left)
	}
}

func TestPublicDependencyManager(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	svc, err := orca.NewRoutineService(orca.Config{
		Name: "depOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, noopRoutine())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	for _, name := range []string{"up", "down"} {
		b := streams.NewApp(name)
		src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0").Param("period", "1ms")
		sink := b.AddOperator("sink", "CountSink").In(schema)
		b.Connect(src, 0, sink, 0)
		app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseAll})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.RegisterApplication(app); err != nil {
			t.Fatal(err)
		}
		if err := svc.RegisterAppConfig(orca.AppConfig{
			ID: name, AppName: name, GarbageCollectable: true, GCTimeout: time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.RegisterDependency("down", "up", 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.StartApp("down"); err != nil {
		t.Fatal(err)
	}
	running := svc.RunningConfigs()
	if len(running) != 2 {
		t.Fatalf("running = %v", running)
	}
	if err := svc.StopApp("up"); err == nil {
		t.Fatal("starvation check missing through facade")
	}
	if err := svc.StopApp("down"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "GC of up", func() bool { return len(svc.RunningConfigs()) == 0 })
}
