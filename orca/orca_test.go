//lint:file-ignore SA1019 this file deliberately exercises the deprecated legacy Orchestrator adapter until its removal (see the deprecation note in package orca)

package orca_test

import (
	"sync"
	"testing"
	"time"

	"streamorca/orca"
	"streamorca/streams"
)

// publicPolicy exercises the full public orchestration surface: scopes,
// timers, user events, actuation, inspection, and the dependency manager.
type publicPolicy struct {
	orca.Base
	mu       sync.Mutex
	started  bool
	timers   int
	users    []string
	failures []orca.PEFailureContext
}

func (p *publicPolicy) HandleOrcaStart(svc *orca.Service, ctx *orca.OrcaStartContext) {
	p.mu.Lock()
	p.started = true
	p.mu.Unlock()
	must(svc.RegisterEventScope(orca.NewTimerScope("t")))
	must(svc.RegisterEventScope(orca.NewUserEventScope("u")))
	must(svc.RegisterEventScope(orca.NewPEFailureScope("f").AddApplicationFilter("papp")))
}

func (p *publicPolicy) HandleTimer(svc *orca.Service, ctx *orca.TimerContext, scopes []string) {
	p.mu.Lock()
	p.timers++
	p.mu.Unlock()
}

func (p *publicPolicy) HandleUserEvent(svc *orca.Service, ctx *orca.UserEventContext, scopes []string) {
	p.mu.Lock()
	p.users = append(p.users, ctx.Name)
	p.mu.Unlock()
}

func (p *publicPolicy) HandlePEFailure(svc *orca.Service, ctx *orca.PEFailureContext, scopes []string) {
	p.mu.Lock()
	p.failures = append(p.failures, *ctx)
	p.mu.Unlock()
	_ = svc.RestartPE(ctx.PE)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPublicOrchestrationSurface(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("papp")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0").Param("period", "1ms")
	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "orca-public")
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		t.Fatal(err)
	}

	policy := &publicPolicy{}
	svc, err := orca.NewService(orca.Config{
		Name: "publicOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	waitFor(t, "start", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return policy.started
	})

	streams.Collector("orca-public").Reset()
	job, err := svc.SubmitApplication("papp", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flow", func() bool { return streams.Collector("orca-public").Len() > 3 })

	// Inspection through the facade.
	g, ok := svc.Graph(job)
	if !ok {
		t.Fatal("no graph")
	}
	pe, ok := g.PEOfOperator("sink")
	if !ok {
		t.Fatal("no sink PE")
	}
	if ops := svc.OperatorsInPE(pe); len(ops) != 1 || ops[0].Name != "sink" {
		t.Fatalf("OperatorsInPE = %+v", ops)
	}

	// Failure handling + actuation through the facade.
	if err := svc.KillPE(pe, "public test"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure handled", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return len(policy.failures) == 1
	})
	policy.mu.Lock()
	f := policy.failures[0]
	policy.mu.Unlock()
	if f.PE != pe || f.App != "papp" || f.Reason != "public test" {
		t.Fatalf("failure ctx = %+v", f)
	}

	// Timers and user events.
	if err := svc.StartTimer("tick", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "timer", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return policy.timers == 1
	})
	svc.RaiseUserEvent("hello", map[string]string{"k": "v"})
	waitFor(t, "user event", func() bool {
		policy.mu.Lock()
		defer policy.mu.Unlock()
		return len(policy.users) == 1 && policy.users[0] == "hello"
	})

	// ErrUnmanagedJob surfaces through the facade.
	if err := svc.CancelJob(99999); err != orca.ErrUnmanagedJob {
		t.Fatalf("CancelJob(unknown) = %v", err)
	}
	if st := svc.Stats(); st.ManagedJobs != 1 || st.Delivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublicDependencyManager(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	svc, err := orca.NewService(orca.Config{
		Name: "depOrca", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, &orca.Base{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	for _, name := range []string{"up", "down"} {
		b := streams.NewApp(name)
		src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0").Param("period", "1ms")
		sink := b.AddOperator("sink", "CountSink").In(schema)
		b.Connect(src, 0, sink, 0)
		app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseAll})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.RegisterApplication(app); err != nil {
			t.Fatal(err)
		}
		if err := svc.RegisterAppConfig(orca.AppConfig{
			ID: name, AppName: name, GarbageCollectable: true, GCTimeout: time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.RegisterDependency("down", "up", 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.StartApp("down"); err != nil {
		t.Fatal(err)
	}
	running := svc.RunningConfigs()
	if len(running) != 2 {
		t.Fatalf("running = %v", running)
	}
	if err := svc.StopApp("up"); err == nil {
		t.Fatal("starvation check missing through facade")
	}
	if err := svc.StopApp("down"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "GC of up", func() bool { return len(svc.RunningConfigs()) == 0 })
}
