package orca_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"streamorca/orca"
	"streamorca/streams"
)

// TestPublicRoutineSurface drives the composable Routine API through the
// facade: typed subscriptions, guard combinators, Compose, and
// setup-error propagation out of Start.
func TestPublicRoutineSurface(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("rapp")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0").Param("period", "1ms")
	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "orca-routine")
	b.Connect(src, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var users []string
	restarted := make(chan streams.PEID, 1)

	// Two independent concerns composed into one routine: a guarded
	// user-event counter and a PE-failure restarter.
	userRoutine := orca.NewRoutine("users", func(sc *orca.SetupContext) error {
		guarded := orca.Debounce(2,
			func(ctx *orca.UserEventContext) bool { return ctx.Name == "bump" },
			func(ctx *orca.UserEventContext, act *orca.Actions) error {
				mu.Lock()
				users = append(users, ctx.Name)
				mu.Unlock()
				return nil
			})
		return sc.Subscribe(orca.OnUserEvent(orca.NewUserEventScope("u"), guarded))
	})
	restartRoutine := orca.NewRoutine("restart", func(sc *orca.SetupContext) error {
		if _, err := sc.Actions().SubmitApplication("rapp", nil); err != nil {
			return err
		}
		return sc.Subscribe(orca.OnPEFailure(
			orca.NewPEFailureScope("pf").AddApplicationFilter("rapp"),
			func(ctx *orca.PEFailureContext, act *orca.Actions) error {
				if err := act.RestartPE(ctx.PE); err != nil {
					return err
				}
				restarted <- ctx.PE
				return nil
			}))
	})

	svc, err := orca.NewRoutineService(orca.Config{
		Name: "routinePublic", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, orca.Compose(userRoutine, restartRoutine))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	streams.Collector("orca-routine").Reset()
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	// Setup already submitted the application: the job is managed before
	// the first event is delivered.
	jobs := svc.ManagedJobs()
	if len(jobs) != 1 || jobs[0].App != "rapp" {
		t.Fatalf("managed jobs after Start = %+v", jobs)
	}
	waitFor(t, "flow", func() bool { return streams.Collector("orca-routine").Len() > 3 })

	// Debounce: the first bump is absorbed, the second fires.
	svc.RaiseUserEvent("bump", nil)
	svc.RaiseUserEvent("bump", nil)
	waitFor(t, "debounced user event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(users) == 1
	})

	g, _ := svc.Graph(jobs[0].Job)
	pe, _ := g.PEOfOperator("sink")
	if err := svc.KillPE(pe, "routine test"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-restarted:
		if got != pe {
			t.Fatalf("restarted %v, want %v", got, pe)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failure handler never ran")
	}
	if st := svc.Stats(); st.HandlerErrors != 0 {
		t.Fatalf("unexpected handler errors: %+v", st)
	}
}

// TestPublicRoutineSetupErrorSurfaces: a Setup error fails Start through
// the facade with the routine's name attached.
func TestPublicRoutineSetupErrorSurfaces(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	sentinel := errors.New("no such application")
	svc, err := orca.NewRoutineService(orca.Config{
		Name: "failingPublic", SAM: inst.SAM, SRM: inst.SRM, PullInterval: time.Hour,
	}, orca.NewRoutine("doomed", func(sc *orca.SetupContext) error { return sentinel }))
	if err != nil {
		t.Fatal(err)
	}
	startErr := svc.Start()
	if !errors.Is(startErr, sentinel) {
		t.Fatalf("Start error = %v, want wrapped sentinel", startErr)
	}
	if !strings.Contains(startErr.Error(), `"doomed"`) {
		t.Fatalf("Start error lacks routine name: %v", startErr)
	}
}
