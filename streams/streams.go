// Package streams is the public API for building and running streaming
// applications on the platform: the application builder (the SPL
// analogue), the operator SPI for custom operators, the built-in operator
// library, and the platform instance (SAM + SRM + simulated cluster).
//
// A minimal program:
//
//	inst, _ := streams.NewInstance(streams.InstanceOptions{
//	    Hosts: []streams.HostSpec{{Name: "h1"}},
//	})
//	defer inst.Close()
//	b := streams.NewApp("hello")
//	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "10")
//	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "out")
//	b.Connect(src, 0, sink, 0)
//	app, _ := b.Build(streams.BuildOptions{})
//	inst.SAM.SubmitJob(app, streams.SubmitOptions{})
//
// See package orca for writing runtime adaptation routines against
// running applications.
package streams

import (
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
)

// Application model.
type (
	// Application is a compiled ADL artifact ready for submission.
	Application = adl.Application
	// HostPool names a set of candidate hosts for placement.
	HostPool = adl.HostPool
	// AppBuilder assembles an application's logical graph.
	AppBuilder = compiler.AppBuilder
	// OpHandle is a fluent reference to an operator under construction.
	OpHandle = compiler.OpHandle
	// BuildOptions selects the fusion strategy.
	BuildOptions = compiler.Options
	// FusionMode enumerates partitioning strategies.
	FusionMode = compiler.FusionMode
)

// Fusion strategies for BuildOptions.
const (
	FuseByTag = compiler.FuseByTag
	FuseNone  = compiler.FuseNone
	FuseAll   = compiler.FuseAll
	FuseAuto  = compiler.FuseAuto
)

// NewApp starts building an application.
func NewApp(name string) *AppBuilder { return compiler.NewApp(name) }

// Data model.
type (
	// Schema is an ordered set of typed attributes, compiled at
	// construction to a columnar slot layout.
	Schema = tuple.Schema
	// Attribute is one named, typed slot.
	Attribute = tuple.Attribute
	// Tuple is one data item, stored unboxed in typed arrays.
	Tuple = tuple.Tuple
	// Type enumerates attribute types.
	Type = tuple.Type
	// FieldRef is a compiled attribute reference: resolve once at operator
	// setup (Schema.Ref / Schema.TypedRef / Schema.MustRef), then access
	// tuples with no per-tuple name lookup. See the tuple package comment
	// for the resolution contract.
	FieldRef = tuple.FieldRef
)

// Attribute types.
const (
	Int       = tuple.Int
	Float     = tuple.Float
	String    = tuple.String
	Bool      = tuple.Bool
	Timestamp = tuple.Timestamp
)

// NewSchema builds a schema, validating attribute names and types.
func NewSchema(attrs ...Attribute) (*Schema, error) { return tuple.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return tuple.MustSchema(attrs...) }

// NewTuple returns a zero-valued tuple of the schema.
func NewTuple(s *Schema) Tuple { return tuple.New(s) }

// Operator SPI for custom operators.
type (
	// Operator is the stream-operator interface.
	Operator = opapi.Operator
	// Source is an operator with no inputs, driven by Run.
	Source = opapi.Source
	// Controllable receives orchestrator control commands.
	Controllable = opapi.Controllable
	// OpContext is the runtime environment handed to an operator.
	OpContext = opapi.Context
	// OperatorBase provides no-op defaults to embed.
	OperatorBase = opapi.Base
	// Params are operator configuration values.
	Params = opapi.Params
)

// RegisterOperator adds a custom operator kind to the default registry.
func RegisterOperator(kind string, factory func() Operator) {
	opapi.Default.Register(kind, func() opapi.Operator { return factory() })
}

// OperatorKinds lists every registered operator kind.
func OperatorKinds() []string { return opapi.Default.Kinds() }

// Platform runtime.
type (
	// Instance is a running platform (SAM, SRM, simulated cluster).
	Instance = platform.Instance
	// InstanceOptions configures NewInstance.
	InstanceOptions = platform.Options
	// HostSpec declares one simulated host.
	HostSpec = platform.HostSpec
	// SubmitOptions parameterises a job submission.
	SubmitOptions = sam.SubmitOptions
	// JobInfo describes a running job.
	JobInfo = sam.JobInfo
	// JobID identifies a job.
	JobID = ids.JobID
	// PEID identifies a processing element.
	PEID = ids.PEID
	// Clock abstracts time for tests and experiments.
	Clock = vclock.Clock
)

// NewInstance boots a platform.
func NewInstance(opts InstanceOptions) (*Instance, error) { return platform.NewInstance(opts) }

// ManualClock is a deterministic clock advanced explicitly by the
// caller; pass it as InstanceOptions.Clock for fully controlled runs.
type ManualClock = vclock.Manual

// NewManualClock returns a deterministic clock positioned at start.
func NewManualClock(start time.Time) *ManualClock { return vclock.NewManual(start) }

// Collector returns the named output collection written by CollectSink
// operators.
func Collector(id string) *ops.Collection { return ops.Collector(id) }

// Built-in metric names, re-exported for scope construction and metric
// inspection.
const (
	MetricTuplesProcessed   = metrics.OpTuplesProcessed
	MetricTuplesSubmitted   = metrics.OpTuplesSubmitted
	MetricQueueSize         = metrics.OpQueueSize
	MetricFinalPunctsQueued = metrics.PortFinalPunctsQueued
	MetricTupleBytesIn      = metrics.PETupleBytesProcessed
	MetricTupleBytesOut     = metrics.PETupleBytesSubmitted
)
