// Package streams is the public API for building and running streaming
// applications on the platform: the application builder (the SPL
// analogue), the operator SPI for custom operators, the built-in operator
// library, and the platform instance (SAM + SRM + simulated cluster).
//
// A minimal program:
//
//	inst, _ := streams.NewInstance(streams.InstanceOptions{
//	    Hosts: []streams.HostSpec{{Name: "h1"}},
//	})
//	defer inst.Close()
//	b := streams.NewApp("hello")
//	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "10")
//	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "out")
//	b.Connect(src, 0, sink, 0)
//	app, _ := b.Build(streams.BuildOptions{})
//	inst.SAM.SubmitJob(app, streams.SubmitOptions{})
//
// # Operator model
//
// Every built-in operator kind registers a declarative descriptor (an
// OpModel) describing its parameters — name, type, required/default,
// range or enum — and its port arities and schema constraints. Build
// validates the whole application against these descriptors and
// accumulates every violation into one error, so an unknown kind, a
// mistyped parameter value, a port-arity violation, or a connection
// between disagreeing schemas fails at compile time with an
// operator-qualified message instead of misbehaving at runtime:
//
//	b.AddOperator("src", "Beacon").Out(schema).Param("count", "ten")
//	_, err := b.Build(streams.BuildOptions{})
//	// compiler: operator "src" (kind Beacon): param "count": invalid int64 value "ten"
//
// Custom operators get the same protection by registering a descriptor
// with RegisterOperatorModel; see the quickstart example. Inside an
// operator, bind configuration at Open with the Params error-reporting
// accessors (BindInt, BindEnum, or a Binder) rather than the deprecated
// silent variants.
//
// See package orca for writing runtime adaptation routines against
// running applications.
package streams

import (
	"time"

	"streamorca/internal/adl"
	"streamorca/internal/ckpt"
	"streamorca/internal/compiler"
	"streamorca/internal/ids"
	"streamorca/internal/load"
	"streamorca/internal/metrics"
	"streamorca/internal/opapi"
	"streamorca/internal/ops"
	"streamorca/internal/platform"
	"streamorca/internal/sam"
	"streamorca/internal/tuple"
	"streamorca/internal/vclock"
	"streamorca/internal/workload"
)

// Application model.
type (
	// Application is a compiled ADL artifact ready for submission.
	Application = adl.Application
	// HostPool names a set of candidate hosts for placement.
	HostPool = adl.HostPool
	// AppBuilder assembles an application's logical graph.
	AppBuilder = compiler.AppBuilder
	// OpHandle is a fluent reference to an operator under construction.
	OpHandle = compiler.OpHandle
	// BuildOptions selects the fusion strategy.
	BuildOptions = compiler.Options
	// FusionMode enumerates partitioning strategies.
	FusionMode = compiler.FusionMode
)

// Fusion strategies for BuildOptions.
const (
	FuseByTag = compiler.FuseByTag
	FuseNone  = compiler.FuseNone
	FuseAll   = compiler.FuseAll
	FuseAuto  = compiler.FuseAuto
)

// NewApp starts building an application.
func NewApp(name string) *AppBuilder { return compiler.NewApp(name) }

// Data model.
type (
	// Schema is an ordered set of typed attributes, compiled at
	// construction to a columnar slot layout.
	Schema = tuple.Schema
	// Attribute is one named, typed slot.
	Attribute = tuple.Attribute
	// Tuple is one data item, stored unboxed in typed arrays.
	Tuple = tuple.Tuple
	// TupleBatch is a schema-homogeneous run of tuples handed to
	// BatchOperator implementers as one call; see the tuple.Batch docs
	// for the ownership contract.
	TupleBatch = tuple.Batch
	// Type enumerates attribute types.
	Type = tuple.Type
	// FieldRef is a compiled attribute reference: resolve once at operator
	// setup (Schema.Ref / Schema.TypedRef / Schema.MustRef), then access
	// tuples with no per-tuple name lookup. See the tuple package comment
	// for the resolution contract.
	FieldRef = tuple.FieldRef
)

// Attribute types.
const (
	Int       = tuple.Int
	Float     = tuple.Float
	String    = tuple.String
	Bool      = tuple.Bool
	Timestamp = tuple.Timestamp
)

// NewSchema builds a schema, validating attribute names and types.
func NewSchema(attrs ...Attribute) (*Schema, error) { return tuple.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return tuple.MustSchema(attrs...) }

// NewTuple returns a zero-valued tuple of the schema.
func NewTuple(s *Schema) Tuple { return tuple.New(s) }

// Operator SPI for custom operators.
type (
	// Operator is the stream-operator interface.
	Operator = opapi.Operator
	// BatchOperator is the opt-in batch execution SPI: an Operator that
	// also accepts whole delivery batches through ProcessBatch. The
	// per-tuple Process remains mandatory — the runtime falls back to it
	// whenever batching does not apply.
	BatchOperator = opapi.BatchOperator
	// Source is an operator with no inputs, driven by Run.
	Source = opapi.Source
	// Controllable receives orchestrator control commands.
	Controllable = opapi.Controllable
	// StatefulOperator declares checkpointable state: SaveState writes
	// it through a StateEncoder, RestoreState reads it back after a PE
	// restart. See the interface docs for the capture contract.
	StatefulOperator = opapi.StatefulOperator
	// PartitionedStateOperator extends StatefulOperator with the
	// fold/re-cut hooks (MergeState, SplitState) a runtime width change
	// of a parallel region uses to migrate per-key state between
	// partitionings. Operators declared data-parallel with
	// OpHandle.Parallel should implement it; a stateful kind without it
	// cold-starts its region on every resize.
	PartitionedStateOperator = opapi.PartitionedStateOperator
	// OpContext is the runtime environment handed to an operator.
	OpContext = opapi.Context
	// OperatorBase provides no-op defaults to embed.
	OperatorBase = opapi.Base
	// Params are operator configuration values. Bind parameters at Open
	// with the error-reporting accessors (BindInt, BindEnum, or a
	// Binder) so malformed values fail loudly instead of silently
	// falling back to defaults.
	Params = opapi.Params
)

// Declarative operator model: a descriptor registered alongside an
// operator kind that Build validates applications against, so
// misconfiguration fails at compile time rather than at runtime.
type (
	// OpModel describes one operator kind's parameters and ports.
	OpModel = opapi.OpModel
	// ParamSpec declares one configuration parameter.
	ParamSpec = opapi.ParamSpec
	// PortSpec declares the arity and schema constraints of one side's
	// ports.
	PortSpec = opapi.PortSpec
	// ParamType enumerates declared parameter value types.
	ParamType = opapi.ParamType
)

// Declared parameter types for ParamSpec.Type.
const (
	ParamString   = opapi.ParamString
	ParamInt      = opapi.ParamInt
	ParamFloat    = opapi.ParamFloat
	ParamBool     = opapi.ParamBool
	ParamDuration = opapi.ParamDuration
	ParamEnum     = opapi.ParamEnum
)

// ExactlyPorts declares a fixed port arity for an OpModel side.
func ExactlyPorts(n int) PortSpec { return opapi.ExactlyPorts(n) }

// AtLeastPorts declares a variadic port arity of n or more.
func AtLeastPorts(n int) PortSpec { return opapi.AtLeastPorts(n) }

// Bound wraps a ParamSpec range endpoint.
func Bound(v float64) *float64 { return opapi.Bound(v) }

// RegisterOperator adds a custom operator kind to the default registry
// without a descriptor; applications using the kind build, but their
// configuration is not validated. Prefer RegisterOperatorModel.
func RegisterOperator(kind string, factory func() Operator) {
	opapi.Default.Register(kind, func() opapi.Operator { return factory() })
}

// RegisterOperatorModel adds a custom operator kind together with its
// declarative descriptor, giving the kind the same Build-time parameter
// and port validation as the built-in library.
func RegisterOperatorModel(kind string, factory func() Operator, model *OpModel) {
	opapi.Default.RegisterOp(kind, func() opapi.Operator { return factory() }, model)
}

// OperatorKinds lists every registered operator kind.
func OperatorKinds() []string { return opapi.Default.Kinds() }

// OperatorModel returns the descriptor registered for kind, or nil when
// the kind is unknown or was registered without one. The returned model
// is shared; callers must not mutate it.
func OperatorModel(kind string) *OpModel { return opapi.Default.Model(kind) }

// Operator-state checkpointing: with a CheckpointStore in
// InstanceOptions, PE restarts restore every StatefulOperator from the
// PE's latest snapshot (periodic via CheckpointInterval, on-demand via
// orca's Service.CheckpointPE) instead of coming back empty.
type (
	// CheckpointStore persists PE state snapshots.
	CheckpointStore = ckpt.Store
	// StateEncoder writes operator state into a snapshot section.
	StateEncoder = ckpt.Encoder
	// StateDecoder reads operator state back out of a snapshot section.
	StateDecoder = ckpt.Decoder
)

// PartitionOf is the hash a parallel region's split applies to route a
// key to one of width partitions — FNV-1a over the key, stable across
// resizes. SplitState implementations use the same function so migrated
// state lands exactly where the resized split will route the key's
// tuples. sv and iv are the key's string and integer components; pass
// the zero value for the one the key does not use.
func PartitionOf(sv string, iv int64, width int) int { return opapi.PartitionOf(sv, iv, width) }

// NewMemCheckpointStore returns an in-process snapshot store — state
// survives PE restarts within one platform instance.
func NewMemCheckpointStore() CheckpointStore { return ckpt.NewMemStore() }

// NewFSCheckpointStore returns a snapshot store persisting under dir,
// surviving the process; back dir with shared storage for cross-host
// restore.
func NewFSCheckpointStore(dir string) (CheckpointStore, error) {
	fs, err := ckpt.NewFSStore(dir)
	if err != nil {
		// Return a bare nil interface, not a typed-nil *FSStore: callers
		// that mishandle err must still fail the platform's store
		// presence check instead of panicking on first use.
		return nil, err
	}
	return fs, nil
}

// FaultCheckpointStore decorates any CheckpointStore with deterministic
// fault injection — failed, dropped, and torn saves plus per-operation
// latency — for chaos testing against hostile storage.
type FaultCheckpointStore = ckpt.FaultStore

// NewFaultCheckpointStore wraps inner with fault injection. The clock
// paces injected latency; nil means the wall clock. With no faults
// armed the wrapper is fully transparent, so it can stay in place for
// production-shaped runs.
func NewFaultCheckpointStore(inner CheckpointStore, clock Clock) *FaultCheckpointStore {
	return ckpt.NewFaultStore(inner, clock)
}

// RetryPolicy bounds and paces the platform's restart and checkpoint
// actuations (InstanceOptions.Retry): bounded attempts with seeded
// exponential-backoff jitter. The zero value keeps the single-attempt
// behaviour deterministic virtual-clock tests rely on.
type RetryPolicy = sam.RetryPolicy

// DefaultRetryPolicy is the production-shaped retry policy: three
// attempts with 5ms-based exponential backoff capped at 250ms.
func DefaultRetryPolicy() RetryPolicy { return sam.DefaultRetryPolicy() }

// Platform runtime.
type (
	// Instance is a running platform (SAM, SRM, simulated cluster).
	Instance = platform.Instance
	// InstanceOptions configures NewInstance.
	InstanceOptions = platform.Options
	// HostSpec declares one simulated host.
	HostSpec = platform.HostSpec
	// SubmitOptions parameterises a job submission.
	SubmitOptions = sam.SubmitOptions
	// JobInfo describes a running job.
	JobInfo = sam.JobInfo
	// JobID identifies a job.
	JobID = ids.JobID
	// PEID identifies a processing element.
	PEID = ids.PEID
	// Clock abstracts time for tests and experiments.
	Clock = vclock.Clock
)

// NewInstance boots a platform.
func NewInstance(opts InstanceOptions) (*Instance, error) { return platform.NewInstance(opts) }

// ManualClock is a deterministic clock advanced explicitly by the
// caller; pass it as InstanceOptions.Clock for fully controlled runs.
type ManualClock = vclock.Manual

// NewManualClock returns a deterministic clock positioned at start.
func NewManualClock(start time.Time) *ManualClock { return vclock.NewManual(start) }

// Collector returns the named output collection written by CollectSink
// operators.
func Collector(id string) *ops.Collection { return ops.Collector(id) }

// Load generation and latency measurement: external drivers push tuples
// into a running application through a "LoadSource" operator (resolved
// from the injector registry by its injectorId parameter) and a
// "LatencySink" operator records source-to-sink latency from a
// Timestamp attribute stamped at injection. See the root package doc's
// "Load generation and latency measurement" section.
type (
	// LatencyHistogram is the mergeable log-bucketed latency histogram
	// (~3% relative quantile error, allocation-free Record).
	LatencyHistogram = load.Histogram
	// LoadInjector hands driver tuples to a LoadSource operator.
	LoadInjector = load.Injector
	// LoadMeter accumulates a LatencySink's observations: histogram,
	// delivered count, and windowed throughput.
	LoadMeter = load.Meter
	// OpenLoopConfig parameterises the constant-rate, coordinated-
	// omission-correct driver (latency charged against intended send
	// instants).
	OpenLoopConfig = load.OpenLoopConfig
	// ClosedLoopConfig parameterises the N-users-with-think-time driver.
	ClosedLoopConfig = load.ClosedLoopConfig
	// LoadStats summarises a driver run.
	LoadStats = load.Stats
	// BenchReport is the shared BENCH_*.json record schema.
	BenchReport = load.Report
	// KeyConfig and KeyGen draw Zipf-skewed keys for load generation.
	KeyConfig = workload.KeyConfig
	KeyGen    = workload.KeyGen
)

// NewLatencyHistogram returns an empty latency histogram.
func NewLatencyHistogram() *LatencyHistogram { return load.NewHistogram() }

// LoadInjectorFor returns the process-global injector with the given
// id, shared with the LoadSource operator configured with the same
// injectorId.
func LoadInjectorFor(id string) *LoadInjector { return load.InjectorFor(id) }

// LoadMeterFor returns the process-global meter with the given id,
// shared with the LatencySink operator configured with the same
// meterId.
func LoadMeterFor(id string) *LoadMeter { return load.MeterFor(id) }

// RunOpenLoop drives an injector at a constant offered rate,
// coordinated-omission-correctly.
func RunOpenLoop(cfg OpenLoopConfig) (LoadStats, error) { return load.RunOpenLoop(cfg) }

// RunClosedLoop simulates N concurrent users with think time.
func RunClosedLoop(cfg ClosedLoopConfig) (LoadStats, error) { return load.RunClosedLoop(cfg) }

// NewKeyGen builds a Zipf-skewed key generator.
func NewKeyGen(cfg KeyConfig) *KeyGen { return workload.NewKeyGen(cfg) }

// WriteBenchReport serialises a bench record as deterministic indented
// JSON — the one writer behind every BENCH_*.json file.
func WriteBenchReport(path string, r *BenchReport) error { return load.WriteReport(path, r) }

// Built-in metric names, re-exported for scope construction and metric
// inspection.
const (
	MetricTuplesProcessed   = metrics.OpTuplesProcessed
	MetricTuplesSubmitted   = metrics.OpTuplesSubmitted
	MetricQueueSize         = metrics.OpQueueSize
	MetricFinalPunctsQueued = metrics.PortFinalPunctsQueued
	MetricTupleBytesIn      = metrics.PETupleBytesProcessed
	MetricTupleBytesOut     = metrics.PETupleBytesSubmitted
	// Checkpointing health metrics (PE scope): snapshot count, restored
	// operator count, and the snapshot-age gauge checkpoint-aware
	// failover routines rank replicas by (-1 until a PE first anchors
	// its state to a snapshot).
	MetricCheckpoints     = metrics.PECheckpoints
	MetricStateRestores   = metrics.PEStateRestores
	MetricCheckpointAgeMs = metrics.PECheckpointAgeMs
	MetricCheckpointBytes = metrics.PECheckpointBytes
	// Tuple-rate gauges (PE scope): ingest/egress tuples per second,
	// derived from counter deltas between metric snapshots. Load
	// drivers and elasticity routines rank PEs by these.
	MetricIngestRate = metrics.PEIngestRate
	MetricEgressRate = metrics.PEEgressRate
)
