package streams_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamorca/streams"
)

// counterOp is a user-defined operator registered through the public SPI.
type counterOp struct {
	streams.OperatorBase
	ctx streams.OpContext
	n   *atomic.Int64
}

var publicOpCount atomic.Int64

func init() {
	streams.RegisterOperator("PublicCounter", func() streams.Operator {
		return &counterOp{n: &publicOpCount}
	})
}

func (c *counterOp) Open(ctx streams.OpContext) error { c.ctx = ctx; return nil }

func (c *counterOp) Process(port int, t streams.Tuple) error {
	c.n.Add(1)
	return c.ctx.Submit(0, t)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPublicAPIEndToEnd(t *testing.T) {
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}, {Name: "h2"}},
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("public")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "25")
	mid := b.AddOperator("mid", "PublicCounter").In(schema).Out(schema)
	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "public-out")
	b.Connect(src, 0, mid, 0)
	b.Connect(mid, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseAuto, TargetPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.PEs) != 2 {
		t.Fatalf("FuseAuto produced %d PEs", len(app.PEs))
	}

	streams.Collector("public-out").Reset()
	publicOpCount.Store(0)
	job, err := inst.SAM.SubmitJob(app, streams.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "completion", func() bool { return streams.Collector("public-out").Finals() == 1 })
	if streams.Collector("public-out").Len() != 25 || publicOpCount.Load() != 25 {
		t.Fatalf("tuples: sink=%d custom=%d", streams.Collector("public-out").Len(), publicOpCount.Load())
	}
	info, ok := inst.SAM.Job(job)
	if !ok || info.App != "public" {
		t.Fatalf("job info: %+v", info)
	}
	if err := inst.SAM.CancelJob(job); err != nil {
		t.Fatal(err)
	}
}

func TestManualClockExported(t *testing.T) {
	start := time.Unix(500, 0)
	clock := streams.NewManualClock(start)
	if !clock.Now().Equal(start) {
		t.Fatal("manual clock start wrong")
	}
	clock.Advance(time.Minute)
	if !clock.Now().Equal(start.Add(time.Minute)) {
		t.Fatal("manual clock advance wrong")
	}
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Clock: clock, Hosts: []streams.HostSpec{{Name: "h1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
}

func TestOperatorKindsIncludeBuiltins(t *testing.T) {
	kinds := streams.OperatorKinds()
	want := map[string]bool{"Beacon": false, "Filter": false, "Aggregate": false, "CollectSink": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("built-in kind %q missing from %v", k, kinds)
		}
	}
}

func TestSchemaAndTupleHelpers(t *testing.T) {
	s, err := streams.NewSchema(streams.Attribute{Name: "x", Type: streams.Float})
	if err != nil {
		t.Fatal(err)
	}
	tp := streams.NewTuple(s)
	if err := tp.SetFloat("x", 2.5); err != nil {
		t.Fatal(err)
	}
	if tp.Float("x") != 2.5 {
		t.Fatal("tuple round trip failed")
	}
	if _, err := streams.NewSchema(streams.Attribute{Name: "", Type: streams.Int}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

// gatedOp is a custom operator registered WITH a descriptor, so the
// builder validates its configuration at Build time.
type gatedOp struct {
	streams.OperatorBase
	ctx streams.OpContext
}

func (g *gatedOp) Open(ctx streams.OpContext) error { g.ctx = ctx; return nil }

func (g *gatedOp) Process(port int, t streams.Tuple) error { return g.ctx.Submit(0, t) }

func init() {
	streams.RegisterOperatorModel("PublicGate", func() streams.Operator { return &gatedOp{} },
		&streams.OpModel{
			Doc:     "test operator with a declared model",
			Inputs:  streams.ExactlyPorts(1),
			Outputs: streams.ExactlyPorts(1),
			Params: []streams.ParamSpec{
				{Name: "threshold", Type: streams.ParamInt, Required: true, Min: streams.Bound(0)},
				{Name: "mode", Type: streams.ParamEnum, Enum: []string{"open", "closed"}, Default: "open"},
			},
		})
}

func TestRegisterOperatorModelValidatesAtBuild(t *testing.T) {
	if m := streams.OperatorModel("PublicGate"); m == nil || m.Kind != "PublicGate" {
		t.Fatalf("OperatorModel = %+v", m)
	}
	if streams.OperatorModel("Beacon") == nil {
		t.Fatal("built-in Beacon has no descriptor")
	}
	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})

	// Misconfigured: missing required param, bad enum value, arity
	// violation. All three must surface in one Build error.
	b := streams.NewApp("gate-bad")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "5")
	gate := b.AddOperator("gate", "PublicGate").In(schema, schema).Out(schema).
		Param("mode", "ajar")
	b.Connect(src, 0, gate, 0)
	_, err := b.Build(streams.BuildOptions{})
	if err == nil {
		t.Fatal("misconfigured custom operator built")
	}
	for _, want := range []string{
		`required param "threshold"`,
		`value "ajar" not in {open, closed}`,
		"declares 2 input port(s), want exactly 1",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Build error missing %q: %v", want, err)
		}
	}

	// Well-configured: builds cleanly.
	b2 := streams.NewApp("gate-ok")
	src2 := b2.AddOperator("src", "Beacon").Out(schema).Param("count", "5")
	gate2 := b2.AddOperator("gate", "PublicGate").In(schema).Out(schema).
		Param("threshold", "3").Param("mode", "open")
	sink2 := b2.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "gate-ok")
	b2.Connect(src2, 0, gate2, 0)
	b2.Connect(gate2, 0, sink2, 0)
	if _, err := b2.Build(streams.BuildOptions{}); err != nil {
		t.Fatalf("valid custom operator rejected: %v", err)
	}
}

// statefulPublicOp is a user-defined stateful operator registered
// through the public SPI: its running total is checkpointable.
type statefulPublicOp struct {
	streams.OperatorBase
	ctx   streams.OpContext
	total int64
}

var publicRestored atomic.Int64

func init() {
	streams.RegisterOperatorModel("PublicStateful", func() streams.Operator { return &statefulPublicOp{} },
		&streams.OpModel{
			Doc:     "sums seq values into checkpointable state",
			Inputs:  streams.ExactlyPorts(1),
			Outputs: streams.ExactlyPorts(1),
		})
}

func (s *statefulPublicOp) Open(ctx streams.OpContext) error { s.ctx = ctx; return nil }

func (s *statefulPublicOp) Process(port int, t streams.Tuple) error {
	s.total += t.Int("seq")
	return s.ctx.Submit(0, t)
}

func (s *statefulPublicOp) SaveState(e *streams.StateEncoder) error {
	e.PutInt(s.total)
	return nil
}

func (s *statefulPublicOp) RestoreState(d *streams.StateDecoder) error {
	v := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	s.total = v
	publicRestored.Store(v)
	return nil
}

// TestCheckpointStorePublicAPI drives the checkpointing surface
// exported by streams end to end: a stateful custom operator on a
// checkpointing instance survives a PE restart with its state intact.
func TestCheckpointStorePublicAPI(t *testing.T) {
	var _ streams.StatefulOperator = (*statefulPublicOp)(nil)
	store := streams.NewMemCheckpointStore()
	inst, err := streams.NewInstance(streams.InstanceOptions{
		Hosts:           []streams.HostSpec{{Name: "h1"}},
		MetricsInterval: time.Hour,
		Checkpoint:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	schema := streams.MustSchema(streams.Attribute{Name: "seq", Type: streams.Int})
	b := streams.NewApp("publicCkpt")
	src := b.AddOperator("src", "Beacon").Out(schema).Param("count", "0")
	mid := b.AddOperator("mid", "PublicStateful").In(schema).Out(schema)
	sink := b.AddOperator("sink", "CollectSink").In(schema).Param("collectorId", "public-ckpt")
	b.Connect(src, 0, mid, 0)
	b.Connect(mid, 0, sink, 0)
	app, err := b.Build(streams.BuildOptions{Fusion: streams.FuseNone})
	if err != nil {
		t.Fatal(err)
	}
	streams.Collector("public-ckpt").Reset()
	publicRestored.Store(0)
	job, err := inst.SAM.SubmitJob(app, streams.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = inst.SAM.CancelJob(job) }()
	waitFor(t, "flow", func() bool { return streams.Collector("public-ckpt").Len() > 20 })

	var midPE streams.PEID
	info, _ := inst.SAM.Job(job)
	for _, pe := range info.PEs {
		for _, op := range pe.Operators {
			if op == "mid" {
				midPE = pe.ID
			}
		}
	}
	if err := inst.SAM.CheckpointPE(midPE); err != nil {
		t.Fatal(err)
	}
	if err := inst.SAM.KillPE(midPE, "test fault"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "crash observed", func() bool {
		info, _ := inst.SAM.Job(job)
		for _, pe := range info.PEs {
			if pe.ID == midPE {
				return pe.State == "crashed"
			}
		}
		return false
	})
	if err := inst.SAM.RestartPE(midPE); err != nil {
		t.Fatal(err)
	}
	if publicRestored.Load() <= 0 {
		t.Fatalf("restored total = %d", publicRestored.Load())
	}
	n := streams.Collector("public-ckpt").Len()
	waitFor(t, "flow after restore", func() bool { return streams.Collector("public-ckpt").Len() > n })
}
